#include "rtl/module.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace netrev::rtl {
namespace {

TEST(Module, DeclaresInputsAndRegisters) {
  Module m("m");
  const auto a = m.add_input("a", 8);
  const auto r = m.add_register("r", 8);
  EXPECT_EQ(a->kind(), ExprKind::kInput);
  EXPECT_EQ(r->kind(), ExprKind::kRegRef);
  EXPECT_EQ(m.inputs().size(), 1u);
  EXPECT_EQ(m.registers().size(), 1u);
}

TEST(Module, RejectsDuplicates) {
  Module m("m");
  m.add_input("a", 8);
  EXPECT_THROW(m.add_input("a", 4), std::invalid_argument);
  m.add_register("r", 8);
  EXPECT_THROW(m.add_register("r", 8), std::invalid_argument);
}

TEST(Module, SetNextChecksWidthAndName) {
  Module m("m");
  const auto a = m.add_input("a", 8);
  m.add_register("r", 8);
  EXPECT_THROW(m.set_next("nope", a), std::invalid_argument);
  EXPECT_THROW(m.set_next("r", input("x", 4)), std::invalid_argument);
  EXPECT_NO_THROW(m.set_next("r", a));
}

TEST(Module, FindRegister) {
  Module m("m");
  m.add_register("r", 8);
  EXPECT_NE(m.find_register("r"), nullptr);
  EXPECT_EQ(m.find_register("s"), nullptr);
}

TEST(Module, CheckCompleteRequiresNextState) {
  Module m("m");
  m.add_register("r", 8);
  EXPECT_THROW(m.check_complete(), std::invalid_argument);
  m.set_next("r", constant(0, 8));
  EXPECT_NO_THROW(m.check_complete());
}

TEST(Module, CheckCompleteCatchesUndeclaredReferences) {
  Module m("m");
  m.add_register("r", 8);
  m.set_next("r", input("ghost", 8));  // never declared on the module
  EXPECT_THROW(m.check_complete(), std::invalid_argument);

  Module m2("m2");
  m2.add_register("r", 8);
  m2.set_next("r", reg_ref("phantom", 8));
  EXPECT_THROW(m2.check_complete(), std::invalid_argument);
}

TEST(Module, OutputsRejectNull) {
  Module m("m");
  EXPECT_THROW(m.add_output("y", nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace netrev::rtl
