// The lifting subsystem's contract: typed classification on hand-built
// shapes, self-verification (bit-blast + simulation equivalence) on every
// family benchmark, byte-stable output across worker counts and cache
// temperature, and graceful degradation under seeded input corruption.
#include "lift/lift.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/resource_guard.h"
#include "common/thread_pool.h"
#include "itc/family.h"
#include "lift/json.h"
#include "netlist/netlist.h"
#include "parser/bench_parser.h"
#include "pipeline/artifact_cache.h"
#include "pipeline/session.h"
#include "rtl/lower_ops.h"
#include "rtl/netnamer.h"
#include "support/corrupt.h"
#include "wordrec/word.h"

namespace netrev::lift {
namespace {

using netlist::GateType;
using netlist::NetId;
using netlist::Netlist;

const char* const kFamily[] = {"b03s", "b04s", "b08s", "b11s", "b13s"};

wordrec::WordSet one_word(std::vector<NetId> bits) {
  wordrec::WordSet words;
  words.words.push_back(wordrec::Word{std::move(bits)});
  return words;
}

TEST(Classify, ConstWord) {
  Netlist nl;
  const NetId k0 = nl.add_net("k0");
  const NetId k1 = nl.add_net("k1");
  nl.add_gate(GateType::kConst1, k0, {});
  nl.add_gate(GateType::kConst1, k1, {});

  const LiftResult model = lift_words(nl, one_word({k0, k1}));
  ASSERT_EQ(model.ops.size(), 1u);
  EXPECT_EQ(model.ops[0].kind, OpKind::kConst);
  EXPECT_EQ(model.ops[0].name, "const");
  EXPECT_TRUE(model.ops[0].const_value);
  EXPECT_EQ(model.verdict, "equivalent");
}

TEST(Classify, BitwiseWord) {
  Netlist nl;
  const NetId a0 = nl.add_net("a0"), a1 = nl.add_net("a1");
  const NetId b0 = nl.add_net("b0"), b1 = nl.add_net("b1");
  const NetId o0 = nl.add_net("o0"), o1 = nl.add_net("o1");
  for (NetId in : {a0, a1, b0, b1}) nl.mark_primary_input(in);
  nl.add_gate(GateType::kAnd, o0, {a0, b0});
  nl.add_gate(GateType::kAnd, o1, {a1, b1});
  nl.mark_primary_output(o0);
  nl.mark_primary_output(o1);

  const LiftResult model = lift_words(nl, one_word({o0, o1}));
  ASSERT_EQ(model.ops.size(), 1u);
  const WordOp& op = model.ops[0];
  EXPECT_EQ(op.kind, OpKind::kBitwise);
  EXPECT_EQ(op.name, "and");
  EXPECT_EQ(op.bitwise_type, GateType::kAnd);
  ASSERT_EQ(op.operands.size(), 2u);
  EXPECT_EQ(model.signals[op.operands[0]].bits, (std::vector<NetId>{a0, a1}));
  EXPECT_EQ(model.signals[op.operands[1]].bits, (std::vector<NetId>{b0, b1}));
  EXPECT_EQ(model.verdict, "equivalent");
}

TEST(Classify, MuxWord) {
  Netlist nl;
  const NetId sel = nl.add_net("sel");
  const NetId a0 = nl.add_net("a0"), a1 = nl.add_net("a1");
  const NetId b0 = nl.add_net("b0"), b1 = nl.add_net("b1");
  const NetId y0 = nl.add_net("y0"), y1 = nl.add_net("y1");
  for (NetId in : {sel, a0, a1, b0, b1}) nl.mark_primary_input(in);
  rtl::NetNamer namer(nl);
  const NetId not_sel = rtl::make_not(namer, sel);
  // mux2_spec(sel, a, b): sel ? b : a — so the b-column is when_true.
  rtl::emit_onto(namer, y0, rtl::mux2_spec(namer, sel, a0, b0, not_sel));
  rtl::emit_onto(namer, y1, rtl::mux2_spec(namer, sel, a1, b1, not_sel));
  nl.mark_primary_output(y0);
  nl.mark_primary_output(y1);

  const LiftResult model = lift_words(nl, one_word({y0, y1}));
  ASSERT_EQ(model.ops.size(), 1u);
  const WordOp& op = model.ops[0];
  EXPECT_EQ(op.kind, OpKind::kMux2);
  EXPECT_EQ(op.control.net, sel);
  EXPECT_TRUE(op.control.active_high);
  ASSERT_EQ(op.operands.size(), 2u);
  EXPECT_EQ(model.signals[op.operands[0]].bits, (std::vector<NetId>{b0, b1}));
  EXPECT_EQ(model.signals[op.operands[1]].bits, (std::vector<NetId>{a0, a1}));
  EXPECT_EQ(model.verdict, "equivalent");
}

TEST(Classify, PlainRegisterWord) {
  Netlist nl;
  const NetId d0 = nl.add_net("d0"), d1 = nl.add_net("d1");
  const NetId q0 = nl.add_net("q0"), q1 = nl.add_net("q1");
  nl.mark_primary_input(d0);
  nl.mark_primary_input(d1);
  nl.add_gate(GateType::kDff, q0, {d0});
  nl.add_gate(GateType::kDff, q1, {d1});
  nl.mark_primary_output(q0);
  nl.mark_primary_output(q1);

  const LiftResult model = lift_words(nl, one_word({q0, q1}));
  ASSERT_EQ(model.ops.size(), 1u);
  const WordOp& op = model.ops[0];
  EXPECT_EQ(op.kind, OpKind::kRegister);
  EXPECT_EQ(op.d_nets, (std::vector<NetId>{d0, d1}));
  ASSERT_EQ(op.operands.size(), 1u);
  EXPECT_EQ(model.signals[op.operands[0]].bits, (std::vector<NetId>{d0, d1}));
  EXPECT_EQ(model.verdict, "equivalent");
}

TEST(Classify, LoadEnableRegisterWord) {
  Netlist nl;
  const NetId en = nl.add_net("en");
  const NetId d0 = nl.add_net("d0"), d1 = nl.add_net("d1");
  const NetId n0 = nl.add_net("n0"), n1 = nl.add_net("n1");
  const NetId q0 = nl.add_net("q0"), q1 = nl.add_net("q1");
  for (NetId in : {en, d0, d1}) nl.mark_primary_input(in);
  nl.add_gate(GateType::kDff, q0, {n0});
  nl.add_gate(GateType::kDff, q1, {n1});
  rtl::NetNamer namer(nl);
  const NetId not_en = rtl::make_not(namer, en);
  // Next state: en ? d : q — the recirculating shape classify_register hunts.
  rtl::emit_onto(namer, n0, rtl::mux2_spec(namer, en, q0, d0, not_en));
  rtl::emit_onto(namer, n1, rtl::mux2_spec(namer, en, q1, d1, not_en));
  nl.mark_primary_output(q0);
  nl.mark_primary_output(q1);

  const LiftResult model = lift_words(nl, one_word({q0, q1}));
  ASSERT_EQ(model.ops.size(), 1u);
  const WordOp& op = model.ops[0];
  EXPECT_EQ(op.kind, OpKind::kLoadRegister);
  EXPECT_EQ(op.control.net, en);
  EXPECT_TRUE(op.control.active_high);
  EXPECT_EQ(op.d_nets, (std::vector<NetId>{n0, n1}));
  ASSERT_EQ(op.operands.size(), 1u);
  EXPECT_EQ(model.signals[op.operands[0]].bits, (std::vector<NetId>{d0, d1}));
  EXPECT_EQ(model.verdict, "equivalent");
}

TEST(Classify, OpaqueFallbackStillVerifies) {
  Netlist nl;
  const NetId a0 = nl.add_net("a0"), a1 = nl.add_net("a1");
  const NetId b0 = nl.add_net("b0"), b1 = nl.add_net("b1");
  const NetId o0 = nl.add_net("o0"), o1 = nl.add_net("o1");
  for (NetId in : {a0, a1, b0, b1}) nl.mark_primary_input(in);
  // Mixed per-bit gate types defeat every typed pattern.
  nl.add_gate(GateType::kXor, o0, {a0, b0});
  nl.add_gate(GateType::kAnd, o1, {a1, b1});
  nl.mark_primary_output(o0);
  nl.mark_primary_output(o1);

  const LiftResult model = lift_words(nl, one_word({o0, o1}));
  ASSERT_EQ(model.ops.size(), 1u);
  const WordOp& op = model.ops[0];
  EXPECT_EQ(op.kind, OpKind::kOpaque);
  EXPECT_EQ(op.gates.size(), 2u);
  EXPECT_EQ(op.leaves.size(), 4u);
  EXPECT_EQ(model.coverage.opaque_ops, 1u);
  EXPECT_EQ(model.verdict, "equivalent");
}

TEST(Classify, NoVerifyLeavesUnchecked) {
  Netlist nl;
  const NetId k = nl.add_net("k");
  const NetId j = nl.add_net("j");
  nl.add_gate(GateType::kConst0, k, {});
  nl.add_gate(GateType::kConst0, j, {});
  Options options;
  options.verify = false;
  const LiftResult model = lift_words(nl, one_word({k, j}), options);
  EXPECT_EQ(model.verdict, "unchecked");
  EXPECT_EQ(model.ops_checked, 0u);
  ASSERT_EQ(model.ops.size(), 1u);
  EXPECT_FALSE(model.ops[0].checked);
}

// --- family round-trip ------------------------------------------------------
// Every family benchmark must lift to a model whose every operator
// bit-blasts back to something simulation-equivalent to the source cones.

TEST(FamilyRoundTrip, EveryBenchmarkLiftsEquivalent) {
  for (const char* benchmark : kFamily) {
    SCOPED_TRACE(benchmark);
    Session session;
    const LoadedDesign design = session.load_netlist(benchmark);
    const auto model = session.lift(design);
    EXPECT_EQ(model->verdict, "equivalent");
    EXPECT_GT(model->ops.size(), 0u);
    EXPECT_EQ(model->ops_checked, model->ops.size());
    EXPECT_EQ(model->ops_equivalent, model->ops_checked);
    for (const WordOp& op : model->ops) {
      EXPECT_TRUE(op.checked);
      EXPECT_TRUE(op.equivalent) << op.name;
      EXPECT_EQ(op.mismatches, 0u);
    }

    const std::string json = session.lift_json(design);
    EXPECT_EQ(json.rfind("{\"schema_version\":1,", 0), 0u)
        << json.substr(0, 60);
    EXPECT_NE(json.find("\"verdict\":\"equivalent\""), std::string::npos);
    int braces = 0, brackets = 0;
    for (char ch : json) {
      braces += ch == '{';
      braces -= ch == '}';
      brackets += ch == '[';
      brackets -= ch == ']';
    }
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);
  }
}

// --- determinism ------------------------------------------------------------

TEST(Determinism, ByteIdenticalAcrossJobs) {
  const auto render = [](std::size_t jobs) {
    ThreadPool::set_global_jobs(jobs);
    Session session;
    const LoadedDesign design = session.load_netlist("b11s");
    return session.lift_json(design);
  };
  const std::string at_one = render(1);
  const std::string at_eight = render(8);
  ThreadPool::set_global_jobs(0);
  EXPECT_EQ(at_one, at_eight);
}

TEST(Determinism, WarmCacheMatchesColdCache) {
  Session session;
  const LoadedDesign design = session.load_netlist("b08s");
  const std::string cold = session.lift_json(design);
  const std::string warm = session.lift_json(design);
  EXPECT_EQ(cold, warm);

  pipeline::ArtifactCache fresh_cache;
  Session fresh({}, &fresh_cache);
  const std::string other = fresh.lift_json(fresh.load_netlist("b08s"));
  EXPECT_EQ(cold, other);
}

// --- fault injection --------------------------------------------------------
// Seeded corruptions of family sources pushed through the permissive load
// and then lift: the contract is survival (diagnostics or a clean
// UnusableInputError / ResourceLimitError), never a crash.

TEST(FaultInjection, LiftSurvivesSeededCorruptions) {
  constexpr std::uint64_t kSeedsPerCase = 3;
  const std::filesystem::path dir = std::filesystem::temp_directory_path();
  std::size_t survived = 0;
  std::size_t lifted = 0;

  for (const char* benchmark : {"b03s", "b13s"}) {
    const std::string source =
        parser::write_bench(itc::build_benchmark(benchmark).netlist);
    for (const testing::CorruptionKind kind : testing::kAllCorruptionKinds) {
      for (std::uint64_t seed = 0; seed < kSeedsPerCase; ++seed) {
        const std::string label = std::string(benchmark) + ":" +
                                  testing::corruption_name(kind) + ":" +
                                  std::to_string(seed);
        SCOPED_TRACE(label);
        const std::filesystem::path path =
            dir / ("netrev_lift_fi_" + std::to_string(survived) + ".bench");
        {
          std::ofstream out(path);
          out << testing::corrupt(source, kind, seed);
        }

        RunConfig config;
        config.parse.permissive = true;
        config.lift.verify_vectors = 16;  // keep the sweep fast
        Session session(config);
        try {
          const LoadedDesign design = session.load_netlist(path.string());
          const auto model = session.lift(design);
          EXPECT_TRUE(model->verdict == "equivalent" ||
                      model->verdict == "not_equivalent")
              << model->verdict;
          ++lifted;
        } catch (const UnusableInputError&) {
          // Documented rejection of unrecoverable input.
        } catch (const ResourceLimitError&) {
          // Documented runaway-work abort.
        }
        ++survived;
        std::filesystem::remove(path);
      }
    }
  }
  // The sweep only means something if a healthy share of mutants still
  // reach the lifting stage.
  EXPECT_GT(lifted, survived / 2);
}

}  // namespace
}  // namespace netrev::lift
