#include "perf/profile.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "common/thread_pool.h"

namespace netrev::perf {
namespace {

void spin_for(std::chrono::microseconds budget) {
  const auto until = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < until) {
  }
}

TEST(Profiler, DisabledProfilerRecordsNothing) {
  Profiler profiler;
  profiler.count("cones_hashed", 5);
  {
    Stage stage("identify", profiler);
    ScopedWork work("stage.hashing_ns", profiler);
    spin_for(std::chrono::microseconds(200));
  }
  EXPECT_EQ(profiler.counter_value("cones_hashed"), 0u);
  EXPECT_EQ(profiler.counter_value("stage.hashing_ns"), 0u);
  EXPECT_EQ(profiler.top_level_stage_nanos(), 0u);
}

TEST(Profiler, CountersAccumulateWhileEnabled) {
  Profiler profiler;
  profiler.enable();
  profiler.count("pairs_compared", 3);
  profiler.count("pairs_compared", 4);
  EXPECT_EQ(profiler.counter_value("pairs_compared"), 7u);
  profiler.disable();
  profiler.count("pairs_compared", 100);
  EXPECT_EQ(profiler.counter_value("pairs_compared"), 7u);
}

TEST(Profiler, CounterAddressIsStableAcrossReset) {
  Profiler profiler;
  Profiler::Counter& counter = profiler.counter("subtrees_diffed");
  counter.fetch_add(9);
  profiler.enable();  // resets values
  EXPECT_EQ(profiler.counter_value("subtrees_diffed"), 0u);
  // Same counter object still feeds the same name (call sites cache it).
  counter.fetch_add(2);
  EXPECT_EQ(profiler.counter_value("subtrees_diffed"), 2u);
  EXPECT_EQ(&profiler.counter("subtrees_diffed"), &counter);
}

TEST(Profiler, StagesNestIntoATree) {
  Profiler profiler;
  profiler.enable();
  {
    Stage outer("identify", profiler);
    spin_for(std::chrono::microseconds(100));
    {
      Stage inner("grouping", profiler);
      spin_for(std::chrono::microseconds(100));
    }
    {
      Stage inner("merge", profiler);
      spin_for(std::chrono::microseconds(100));
    }
  }
  const std::string json = profiler.render_json();
  // "grouping" and "merge" are children of "identify", not top-level stages.
  const auto identify_pos = json.find("\"name\":\"identify\"");
  const auto grouping_pos = json.find("\"name\":\"grouping\"");
  const auto merge_pos = json.find("\"name\":\"merge\"");
  ASSERT_NE(identify_pos, std::string::npos);
  ASSERT_NE(grouping_pos, std::string::npos);
  ASSERT_NE(merge_pos, std::string::npos);
  EXPECT_LT(identify_pos, grouping_pos);
  EXPECT_LT(grouping_pos, merge_pos);
  EXPECT_EQ(json.find("\"name\":\"identify\"", identify_pos + 1),
            std::string::npos)
      << "re-entering a stage must reuse its node, not clone it";
}

TEST(Profiler, RepeatedStagesAccumulateCalls) {
  Profiler profiler;
  profiler.enable();
  for (int i = 0; i < 3; ++i) {
    Stage stage("load", profiler);
    spin_for(std::chrono::microseconds(50));
  }
  const std::string json = profiler.render_json();
  EXPECT_NE(json.find("\"name\":\"load\",\"ns\":"), std::string::npos);
  EXPECT_NE(json.find("\"calls\":3"), std::string::npos);
}

// The acceptance-criteria invariant: per-stage wall times must account for
// the run — top-level stages sum to within 10% of the total when the whole
// run is staged.
TEST(Profiler, TopLevelStagesCoverTotalWithinTenPercent) {
  Profiler profiler;
  profiler.enable();
  {
    Stage a("load", profiler);
    spin_for(std::chrono::milliseconds(5));
  }
  {
    Stage b("identify", profiler);
    {
      Stage c("grouping", profiler);
      spin_for(std::chrono::milliseconds(5));
    }
    spin_for(std::chrono::milliseconds(5));
  }
  const std::uint64_t total = profiler.total_nanos();
  const std::uint64_t staged = profiler.top_level_stage_nanos();
  ASSERT_GT(total, 0u);
  EXPECT_LE(staged, total + total / 10);
  EXPECT_GE(staged, total - total / 10);
}

TEST(Profiler, ScopedWorkAccumulatesCpuTimeAcrossWorkers) {
  Profiler profiler;
  profiler.enable();
  ThreadPool pool(4);
  pool.parallel_for(0, 8, [&](std::size_t) {
    ScopedWork work("stage.funcheck_ns", profiler);
    spin_for(std::chrono::microseconds(500));
  });
  // 8 bodies x 500us of CPU time each, regardless of wall-clock overlap.
  EXPECT_GE(profiler.counter_value("stage.funcheck_ns"), 8u * 400'000u);
}

TEST(Profiler, RenderTextShowsStagesAndCounters) {
  Profiler profiler;
  profiler.enable();
  {
    Stage stage("identify", profiler);
    spin_for(std::chrono::microseconds(100));
  }
  profiler.count("cones_hashed", 42);
  profiler.count("stage.hashing_ns", 1'500'000);
  const std::string text = profiler.render_text();
  EXPECT_NE(text.find("- identify:"), std::string::npos);
  EXPECT_NE(text.find("cones_hashed: 42"), std::string::npos);
  EXPECT_NE(text.find("stage.hashing_ns: 1.500 ms"), std::string::npos);
}

TEST(Profiler, RenderJsonOmitsZeroCounters) {
  Profiler profiler;
  profiler.enable();
  profiler.counter("never_touched");
  profiler.count("sim_vectors_run", 64);
  const std::string json = profiler.render_json();
  EXPECT_EQ(json.find("never_touched"), std::string::npos);
  EXPECT_NE(json.find("\"sim_vectors_run\":64"), std::string::npos);
}

}  // namespace
}  // namespace netrev::perf
