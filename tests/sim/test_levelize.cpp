#include "sim/levelize.h"

#include <gtest/gtest.h>

#include <unordered_map>

namespace netrev::sim {
namespace {

using netlist::GateId;
using netlist::GateType;
using netlist::NetId;
using netlist::Netlist;

TEST(Levelize, EmptyNetlist) {
  EXPECT_TRUE(levelize(Netlist{}).empty());
}

TEST(Levelize, RespectsDependencies) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  nl.mark_primary_input(a);
  const NetId n1 = nl.add_net("n1");
  const NetId n2 = nl.add_net("n2");
  const NetId n3 = nl.add_net("n3");
  // Deliberately create gates in reverse dependency order.
  const GateId g3 = nl.add_gate(GateType::kNot, n3, {n2});
  const GateId g2 = nl.add_gate(GateType::kNot, n2, {n1});
  const GateId g1 = nl.add_gate(GateType::kNot, n1, {a});
  nl.mark_primary_output(n3);

  const auto order = levelize(nl);
  ASSERT_EQ(order.size(), 3u);
  std::unordered_map<std::uint32_t, std::size_t> position;
  for (std::size_t i = 0; i < order.size(); ++i)
    position[order[i].value()] = i;
  EXPECT_LT(position[g1.value()], position[g2.value()]);
  EXPECT_LT(position[g2.value()], position[g3.value()]);
}

TEST(Levelize, FlopsDoNotCreateDependencies) {
  // q = DFF(x); x = NOT(q): legal sequential loop.
  Netlist nl;
  const NetId q = nl.add_net("q");
  const NetId x = nl.add_net("x");
  nl.add_gate(GateType::kDff, q, {x});
  nl.add_gate(GateType::kNot, x, {q});
  nl.mark_primary_output(q);
  EXPECT_EQ(levelize(nl).size(), 2u);
}

TEST(Levelize, FlopOrderedAfterItsDLogic) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  nl.mark_primary_input(a);
  const NetId q = nl.add_net("q");
  const NetId d = nl.add_net("d");
  const GateId flop = nl.add_gate(GateType::kDff, q, {d});
  const GateId logic = nl.add_gate(GateType::kNot, d, {a});
  nl.mark_primary_output(q);
  const auto order = levelize(nl);
  std::unordered_map<std::uint32_t, std::size_t> position;
  for (std::size_t i = 0; i < order.size(); ++i)
    position[order[i].value()] = i;
  EXPECT_LT(position[logic.value()], position[flop.value()]);
}

TEST(Levelize, ThrowsOnCombinationalCycle) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  nl.mark_primary_input(a);
  const NetId x = nl.add_net("x");
  const NetId y = nl.add_net("y");
  nl.add_gate(GateType::kAnd, x, {a, y});
  nl.add_gate(GateType::kOr, y, {a, x});
  nl.mark_primary_output(y);
  EXPECT_THROW(levelize(nl), std::runtime_error);
}

TEST(Levelize, CycleErrorNamesTheMemberNets) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  nl.mark_primary_input(a);
  const NetId x = nl.add_net("x");
  const NetId y = nl.add_net("y");
  nl.add_gate(GateType::kAnd, x, {a, y});
  nl.add_gate(GateType::kOr, y, {a, x});
  nl.mark_primary_output(y);
  try {
    levelize(nl);
    FAIL() << "expected a cycle error";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("x -> y -> x"), std::string::npos) << what;
    EXPECT_NE(what.find("1 cycle(s)"), std::string::npos) << what;
  }
}

TEST(Levelize, CycleErrorReportsEveryLoopIntoDiagnostics) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  nl.mark_primary_input(a);
  const NetId x1 = nl.add_net("x1");
  const NetId y1 = nl.add_net("y1");
  nl.add_gate(GateType::kAnd, x1, {a, y1});
  nl.add_gate(GateType::kBuf, y1, {x1});
  const NetId x2 = nl.add_net("x2");
  const NetId y2 = nl.add_net("y2");
  nl.add_gate(GateType::kOr, x2, {a, y2});
  nl.add_gate(GateType::kBuf, y2, {x2});
  nl.mark_primary_output(y1);
  nl.mark_primary_output(y2);

  diag::Diagnostics diags;
  EXPECT_THROW(levelize(nl, &diags), std::runtime_error);
  EXPECT_EQ(diags.error_count(), 2u);
  EXPECT_NE(diags.to_string().find("x1 -> y1 -> x1"), std::string::npos);
  EXPECT_NE(diags.to_string().find("x2 -> y2 -> x2"), std::string::npos);
}

}  // namespace
}  // namespace netrev::sim
