#include "sim/equivalence.h"

#include <gtest/gtest.h>

#include "wordrec/assignment.h"
#include "wordrec/reduce.h"

namespace netrev::sim {
namespace {

using netlist::GateType;
using netlist::NetId;
using netlist::Netlist;

// ctrl = NOR(a, b); y = NAND(ctrl, c); z = AND(y, d).
struct Fixture {
  Netlist nl;
  NetId a, b, c, d, ctrl, y, z;

  Fixture() {
    a = nl.add_net("a");
    b = nl.add_net("b");
    c = nl.add_net("c");
    d = nl.add_net("d");
    ctrl = nl.add_net("ctrl");
    y = nl.add_net("y");
    z = nl.add_net("z");
    for (NetId in : {a, b, c, d}) nl.mark_primary_input(in);
    nl.add_gate(GateType::kNor, ctrl, {a, b});
    nl.add_gate(GateType::kNand, y, {ctrl, c});
    nl.add_gate(GateType::kAnd, z, {y, d});
    nl.mark_primary_output(z);
  }
};

TEST(ImplicationCheck, SoundImplicationsPass) {
  Fixture f;
  // ctrl = 0 implies y = 1 (NAND with controlling 0).
  const std::pair<NetId, bool> seeds[] = {{f.ctrl, false}};
  std::unordered_map<NetId, bool> implied{{f.y, true}};
  const auto result = check_implications(f.nl, seeds, implied, 400, 7);
  EXPECT_GT(result.vectors_applicable, 0u);
  EXPECT_TRUE(result.ok());
}

TEST(ImplicationCheck, UnsoundImplicationsFail) {
  Fixture f;
  const std::pair<NetId, bool> seeds[] = {{f.ctrl, false}};
  std::unordered_map<NetId, bool> implied{{f.z, true}};  // wrong: depends on d
  const auto result = check_implications(f.nl, seeds, implied, 400, 7);
  EXPECT_GT(result.vectors_applicable, 0u);
  EXPECT_FALSE(result.ok());
}

TEST(ImplicationCheck, PropagationClosureIsSound) {
  Fixture f;
  const std::pair<NetId, bool> seeds[] = {{f.ctrl, false}};
  const auto prop = wordrec::propagate(f.nl, seeds);
  ASSERT_TRUE(prop.feasible);
  std::unordered_map<NetId, bool> implied(prop.map.entries().begin(),
                                          prop.map.entries().end());
  const auto result = check_implications(f.nl, seeds, implied, 500, 11);
  EXPECT_GT(result.vectors_applicable, 0u);
  EXPECT_TRUE(result.ok()) << result.violations << " violations";
}

TEST(ReductionCheck, MaterializedReductionIsEquivalent) {
  Fixture f;
  const std::pair<NetId, bool> seeds[] = {{f.ctrl, false}};
  const auto prop = wordrec::propagate(f.nl, seeds);
  ASSERT_TRUE(prop.feasible);
  const Netlist reduced = wordrec::materialize_reduction(f.nl, prop.map);
  const auto result =
      check_reduction_equivalence(f.nl, reduced, seeds, 500, 13);
  EXPECT_GT(result.vectors_applicable, 0u);
  EXPECT_TRUE(result.ok()) << result.mismatches << " mismatches";
}

TEST(ReductionCheck, DetectsWrongReduction) {
  Fixture f;
  // A bogus "reduced" netlist that inverts z's logic.
  Netlist bogus;
  const NetId y = bogus.add_net("y");
  const NetId d = bogus.add_net("d");
  const NetId z = bogus.add_net("z");
  bogus.mark_primary_input(y);
  bogus.mark_primary_input(d);
  bogus.add_gate(GateType::kNor, z, {y, d});
  bogus.mark_primary_output(z);
  const std::pair<NetId, bool> seeds[] = {{f.ctrl, false}};
  const auto result = check_reduction_equivalence(f.nl, bogus, seeds, 400, 17);
  EXPECT_FALSE(result.ok());
}

TEST(ImplicationCheck, InapplicableSeedsCountNothing) {
  Fixture f;
  // a=1 forces ctrl=0; asking for ctrl=1 with a=1... seed on two nets that
  // conflict under every vector: ctrl=1 requires a=0 and b=0.
  const std::pair<NetId, bool> seeds[] = {{f.a, true}, {f.ctrl, true}};
  std::unordered_map<NetId, bool> implied{};
  const auto result = check_implications(f.nl, seeds, implied, 200, 3);
  EXPECT_EQ(result.vectors_applicable, 0u);
  EXPECT_TRUE(result.ok());
}

}  // namespace
}  // namespace netrev::sim
