#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/contracts.h"
#include "common/thread_pool.h"

namespace netrev::sim {
namespace {

using netlist::GateType;
using netlist::NetId;
using netlist::Netlist;

TEST(Simulator, EvaluatesCombinationalLogic) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");
  const NetId y = nl.add_net("y");
  nl.mark_primary_input(a);
  nl.mark_primary_input(b);
  nl.add_gate(GateType::kNand, y, {a, b});
  nl.mark_primary_output(y);

  Simulator sim(nl);
  for (int av = 0; av < 2; ++av)
    for (int bv = 0; bv < 2; ++bv) {
      sim.set_input(a, av != 0);
      sim.set_input(b, bv != 0);
      sim.eval();
      EXPECT_EQ(sim.value(y), !(av && bv));
    }
}

TEST(Simulator, ConstantsDrive) {
  Netlist nl;
  const NetId one = nl.add_net("one");
  const NetId y = nl.add_net("y");
  nl.add_gate(GateType::kConst1, one, {});
  nl.add_gate(GateType::kNot, y, {one});
  nl.mark_primary_output(y);
  Simulator sim(nl);
  sim.eval();
  EXPECT_TRUE(sim.value(one));
  EXPECT_FALSE(sim.value(y));
}

TEST(Simulator, StepCommitsDIntoQ) {
  // toggle flop: q = DFF(NOT(q))
  Netlist nl;
  const NetId q = nl.add_net("q");
  const NetId d = nl.add_net("d");
  nl.add_gate(GateType::kDff, q, {d});
  nl.add_gate(GateType::kNot, d, {q});
  nl.mark_primary_output(q);

  Simulator sim(nl);
  sim.set_state(q, false);
  sim.eval();
  EXPECT_TRUE(sim.value(d));
  sim.step();
  EXPECT_TRUE(sim.value(q));
  sim.step();
  EXPECT_FALSE(sim.value(q));
}

TEST(Simulator, FlopToFlopUsesPreEdgeState) {
  // shift register: q2 = DFF(q1), q1 = DFF(in)
  Netlist nl;
  const NetId in = nl.add_net("in");
  const NetId q1 = nl.add_net("q1");
  const NetId q2 = nl.add_net("q2");
  nl.mark_primary_input(in);
  nl.add_gate(GateType::kDff, q1, {in});
  nl.add_gate(GateType::kDff, q2, {q1});
  nl.mark_primary_output(q2);

  Simulator sim(nl);
  sim.set_state(q1, false);
  sim.set_state(q2, false);
  sim.set_input(in, true);
  sim.eval();
  sim.step();
  EXPECT_TRUE(sim.value(q1));
  EXPECT_FALSE(sim.value(q2));  // old q1, not the new one
  sim.step();
  EXPECT_TRUE(sim.value(q2));
}

TEST(Simulator, SetInputRejectsNonInputs) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId y = nl.add_net("y");
  nl.mark_primary_input(a);
  nl.add_gate(GateType::kNot, y, {a});
  nl.mark_primary_output(y);
  Simulator sim(nl);
  EXPECT_THROW(sim.set_input(y, true), ContractViolation);
}

TEST(Simulator, SetStateRejectsNonFlops) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  nl.mark_primary_input(a);
  nl.mark_primary_output(a);
  Simulator sim(nl);
  EXPECT_THROW(sim.set_state(a, true), ContractViolation);
}

TEST(Simulator, RandomizeIsDeterministicPerSeed) {
  Netlist nl;
  std::vector<NetId> inputs;
  for (int i = 0; i < 16; ++i) {
    inputs.push_back(nl.add_net("i" + std::to_string(i)));
    nl.mark_primary_input(inputs.back());
    nl.mark_primary_output(inputs.back());
  }
  Simulator sim(nl);
  Rng r1(5), r2(5);
  sim.randomize_inputs(r1);
  std::vector<bool> first;
  for (NetId in : inputs) first.push_back(sim.value(in));
  sim.randomize_inputs(r2);
  for (std::size_t i = 0; i < inputs.size(); ++i)
    EXPECT_EQ(sim.value(inputs[i]), first[i]);
}

TEST(Simulator, WideGateEvaluation) {
  Netlist nl;
  std::vector<NetId> ins;
  for (int i = 0; i < 5; ++i) {
    ins.push_back(nl.add_net("i" + std::to_string(i)));
    nl.mark_primary_input(ins.back());
  }
  const NetId y = nl.add_net("y");
  nl.add_gate(GateType::kXor, y, ins);
  nl.mark_primary_output(y);
  Simulator sim(nl);
  for (int mask = 0; mask < 32; ++mask) {
    int ones = 0;
    for (int i = 0; i < 5; ++i) {
      const bool v = (mask >> i) & 1;
      sim.set_input(ins[static_cast<std::size_t>(i)], v);
      ones += v;
    }
    sim.eval();
    EXPECT_EQ(sim.value(y), ones % 2 == 1) << "mask " << mask;
  }
}

// Batched random sampling draws each kRandomSimBlock-vector block from its
// own Rng::stream, so the sample matrix is identical at any job count.
TEST(SampleRandomVectors, IdenticalAcrossJobCounts) {
  Netlist nl;
  std::vector<NetId> probes;
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");
  nl.mark_primary_input(a);
  nl.mark_primary_input(b);
  for (int i = 0; i < 6; ++i) {
    const NetId y = nl.add_net("y" + std::to_string(i));
    nl.add_gate(i % 2 == 0 ? GateType::kNand : GateType::kNor, y, {a, b});
    probes.push_back(y);
  }

  const std::size_t restore = ThreadPool::global_jobs();
  ThreadPool::set_global_jobs(1);
  // 2.5 blocks' worth of vectors: exercises the partial final block.
  const auto serial =
      sample_random_vectors(nl, probes, 2 * kRandomSimBlock + 16, 0x5EED);
  EXPECT_EQ(serial.size(), (2 * kRandomSimBlock + 16) * probes.size());
  ThreadPool::set_global_jobs(8);
  const auto parallel =
      sample_random_vectors(nl, probes, 2 * kRandomSimBlock + 16, 0x5EED);
  ThreadPool::set_global_jobs(restore);
  EXPECT_EQ(serial, parallel);
}

TEST(SampleRandomVectors, SeedChangesSamples) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  nl.mark_primary_input(a);
  const NetId y = nl.add_net("y");
  nl.add_gate(GateType::kNot, y, {a});
  const std::vector<NetId> probes{a, y};

  const auto one = sample_random_vectors(nl, probes, 64, 1);
  const auto two = sample_random_vectors(nl, probes, 64, 2);
  EXPECT_NE(one, two);
}

}  // namespace
}  // namespace netrev::sim
