// Bit-exactness of the 64-way packed simulation path.
//
// Two contracts under test.  First, the PackedSimulator itself: each of its
// 64 lanes must behave exactly like one scalar Simulator across eval() and
// step().  Second, the sampling layer: sample_random_vectors (packed) must
// return byte-identical samples to sample_random_vectors_scalar for every
// seed, every vector count — especially counts not divisible by 64 or by
// kRandomSimBlock — and every job count.
#include "sim/packed.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "itc/family.h"
#include "netlist/compact.h"
#include "netlist/netlist.h"
#include "netlist/random_netlist.h"
#include "sim/simulator.h"

namespace netrev::sim {
namespace {

using netlist::CompactView;
using netlist::NetId;
using netlist::Netlist;

// All nets of a design, the widest possible probe set.
std::vector<NetId> all_nets(const Netlist& nl) {
  std::vector<NetId> probes;
  for (std::size_t i = 0; i < nl.net_count(); ++i)
    probes.push_back(nl.net_id_at(i));
  return probes;
}

// Drives one scalar Simulator per lane and the packed engine with identical
// stimulus, then checks every net's word against the 64 scalar runs.
void expect_lanes_match_scalar(const Netlist& nl, std::uint64_t seed) {
  const CompactView view = CompactView::build(nl);
  ASSERT_TRUE(view.acyclic());

  // Random per-lane stimulus.
  Rng rng(seed);
  std::vector<std::vector<bool>> lane_inputs(64);
  std::vector<std::vector<bool>> lane_states(64);
  const auto inputs = view.primary_inputs();
  const auto flops = view.flop_gates();
  for (std::size_t lane = 0; lane < 64; ++lane) {
    for (std::size_t i = 0; i < inputs.size(); ++i)
      lane_inputs[lane].push_back(rng.next_bool());
    for (std::size_t i = 0; i < flops.size(); ++i)
      lane_states[lane].push_back(rng.next_bool());
  }

  PackedSimulator packed(view);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    std::uint64_t word = 0;
    for (std::size_t lane = 0; lane < 64; ++lane)
      if (lane_inputs[lane][i]) word |= std::uint64_t{1} << lane;
    packed.set_input_word(inputs[i], word);
  }
  for (std::size_t i = 0; i < flops.size(); ++i) {
    std::uint64_t word = 0;
    for (std::size_t lane = 0; lane < 64; ++lane)
      if (lane_states[lane][i]) word |= std::uint64_t{1} << lane;
    packed.set_state_word(view.gate_output(flops[i]), word);
  }
  packed.eval();

  std::vector<std::unique_ptr<Simulator>> scalars;
  for (std::size_t lane = 0; lane < 64; ++lane) {
    auto simulator = std::make_unique<Simulator>(nl);
    for (std::size_t i = 0; i < inputs.size(); ++i)
      simulator->set_input(NetId(inputs[i]), lane_inputs[lane][i]);
    for (std::size_t i = 0; i < flops.size(); ++i)
      simulator->set_state(NetId(view.gate_output(flops[i])),
                           lane_states[lane][i]);
    simulator->eval();
    scalars.push_back(std::move(simulator));
  }

  const auto expect_all_nets_equal = [&](const char* when) {
    for (std::uint32_t n = 0; n < view.net_count(); ++n) {
      const std::uint64_t word = packed.value_word(n);
      for (std::size_t lane = 0; lane < 64; ++lane) {
        ASSERT_EQ(((word >> lane) & 1) != 0,
                  scalars[lane]->value(nl.net_id_at(n)))
            << when << ": net " << nl.net(nl.net_id_at(n)).name << " lane "
            << lane;
      }
    }
  };
  expect_all_nets_equal("after eval");

  // Three clock edges: step() must track the scalar state machine on every
  // lane (two-phase sample/commit, no cross-flop ordering hazards).
  for (int cycle = 0; cycle < 3; ++cycle) {
    packed.step();
    for (auto& simulator : scalars) simulator->step();
    expect_all_nets_equal("after step");
  }
}

TEST(PackedSimulator, LanesMatchScalarOnFamilyBenchmarks) {
  for (const char* name : {"b03s", "b08s", "b13s"}) {
    SCOPED_TRACE(name);
    expect_lanes_match_scalar(itc::build_benchmark(name).netlist, 0xFACE);
  }
}

TEST(PackedSimulator, LanesMatchScalarOnRandomNetlists) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    SCOPED_TRACE(seed);
    netlist::RandomNetlistSpec spec;
    spec.seed = seed;
    spec.combinational_gates = 150;
    spec.flops = 12;
    spec.include_constants = seed % 2 == 0;
    expect_lanes_match_scalar(netlist::random_netlist(spec), seed * 31);
  }
}

TEST(PackedSampling, MatchesScalarForAwkwardVectorCounts) {
  // Counts straddling every boundary: below one RNG block, non-multiples of
  // kRandomSimBlock, non-multiples of 64, and exact word multiples.
  const Netlist nl = itc::build_benchmark("b08s").netlist;
  const auto probes = all_nets(nl);
  for (std::size_t count :
       {std::size_t{1}, std::size_t{31}, std::size_t{32}, std::size_t{33},
        std::size_t{63}, std::size_t{64}, std::size_t{65}, std::size_t{70},
        std::size_t{127}, std::size_t{128}, std::size_t{200}}) {
    SCOPED_TRACE(count);
    EXPECT_EQ(sample_random_vectors(nl, probes, count, 0x5EED),
              sample_random_vectors_scalar(nl, probes, count, 0x5EED));
  }
}

TEST(PackedSampling, MatchesScalarAcrossSeeds) {
  const Netlist nl = itc::build_benchmark("b03s").netlist;
  const auto probes = all_nets(nl);
  for (std::uint64_t seed : {std::uint64_t{0}, std::uint64_t{1},
                             std::uint64_t{0x5EED}, std::uint64_t{~0ull}}) {
    SCOPED_TRACE(seed);
    EXPECT_EQ(sample_random_vectors(nl, probes, 96, seed),
              sample_random_vectors_scalar(nl, probes, 96, seed));
  }
}

TEST(PackedSampling, ByteIdenticalAtAnyJobCount) {
  const Netlist nl = itc::build_benchmark("b13s").netlist;
  const CompactView view = CompactView::build(nl);
  const auto probes = all_nets(nl);
  const std::size_t restore = ThreadPool::global_jobs();
  const auto reference = sample_random_vectors_scalar(nl, probes, 257, 0xF00D);
  for (std::size_t jobs : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                           std::size_t{8}}) {
    SCOPED_TRACE(jobs);
    ThreadPool::set_global_jobs(jobs);
    EXPECT_EQ(sample_random_vectors(nl, probes, 257, 0xF00D), reference);
    EXPECT_EQ(sample_random_vectors(view, probes, 257, 0xF00D), reference);
  }
  ThreadPool::set_global_jobs(restore);
}

TEST(PackedSampling, PrebuiltViewOverloadMatchesNetlistOverload) {
  const Netlist nl = itc::build_benchmark("b07s").netlist;
  const CompactView view = CompactView::build(nl);
  const auto probes = all_nets(nl);
  EXPECT_EQ(sample_random_vectors(view, probes, 100, 7),
            sample_random_vectors(nl, probes, 100, 7));
}

TEST(PackedSampling, ZeroVectorsYieldEmptySamples) {
  const Netlist nl = itc::build_benchmark("b03s").netlist;
  const auto probes = all_nets(nl);
  EXPECT_TRUE(sample_random_vectors(nl, probes, 0, 1).empty());
  EXPECT_TRUE(sample_random_vectors_scalar(nl, probes, 0, 1).empty());
}

TEST(PackedSampling, CyclicDesignFallsBackToScalar) {
  // A combinational cycle has no levelized schedule; the packed entry point
  // must surface the scalar path's diagnostic, not crash.
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId x = nl.add_net("x");
  const NetId y = nl.add_net("y");
  nl.mark_primary_input(a);
  nl.add_gate(netlist::GateType::kAnd, x, {a, y});
  nl.add_gate(netlist::GateType::kOr, y, {x, a});
  nl.mark_primary_output(y);
  const std::vector<NetId> probes = {y};
  EXPECT_THROW(sample_random_vectors(nl, probes, 8, 1), std::runtime_error);
}

}  // namespace
}  // namespace netrev::sim
