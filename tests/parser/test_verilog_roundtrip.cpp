// Property tests: write_verilog / parse_verilog round-trips preserve the
// design, both for hand-made netlists and for generated family benchmarks.
#include <gtest/gtest.h>

#include <set>

#include "itc/family.h"
#include "netlist/validate.h"
#include "parser/verilog_parser.h"
#include "parser/verilog_writer.h"

namespace netrev::parser {
namespace {

using netlist::Netlist;

// Name-based structural equality: same nets, same port directions, same
// gates in the same file order with the same typed connectivity.
::testing::AssertionResult structurally_equal(const Netlist& a,
                                              const Netlist& b) {
  if (a.net_count() != b.net_count())
    return ::testing::AssertionFailure()
           << "net counts differ: " << a.net_count() << " vs " << b.net_count();
  if (a.gate_count() != b.gate_count())
    return ::testing::AssertionFailure() << "gate counts differ";

  for (std::size_t i = 0; i < a.net_count(); ++i) {
    const auto& net = a.net(a.net_id_at(i));
    const auto other = b.find_net(net.name);
    if (!other)
      return ::testing::AssertionFailure() << "missing net " << net.name;
    if (net.is_primary_input != b.net(*other).is_primary_input ||
        net.is_primary_output != b.net(*other).is_primary_output)
      return ::testing::AssertionFailure()
             << "port direction differs for " << net.name;
  }

  const auto order_a = a.gates_in_file_order();
  const auto order_b = b.gates_in_file_order();
  for (std::size_t i = 0; i < order_a.size(); ++i) {
    const auto& ga = a.gate(order_a[i]);
    const auto& gb = b.gate(order_b[i]);
    if (ga.type != gb.type)
      return ::testing::AssertionFailure() << "gate " << i << " type differs";
    if (a.net(ga.output).name != b.net(gb.output).name)
      return ::testing::AssertionFailure() << "gate " << i << " output differs";
    if (ga.inputs.size() != gb.inputs.size())
      return ::testing::AssertionFailure() << "gate " << i << " arity differs";
    for (std::size_t k = 0; k < ga.inputs.size(); ++k)
      if (a.net(ga.inputs[k]).name != b.net(gb.inputs[k]).name)
        return ::testing::AssertionFailure()
               << "gate " << i << " input " << k << " differs";
  }
  return ::testing::AssertionSuccess();
}

TEST(VerilogRoundtrip, HandMadeDesign) {
  Netlist nl("rt");
  const auto a = nl.add_net("a");
  const auto b = nl.add_net("b");
  const auto n = nl.add_net("n$weird.name[2]");
  const auto q = nl.add_net("q_reg_0_");
  nl.mark_primary_input(a);
  nl.mark_primary_input(b);
  nl.add_gate(netlist::GateType::kXor, n, {a, b});
  nl.add_gate(netlist::GateType::kDff, q, {n});
  nl.mark_primary_output(q);

  const Netlist back = parse_verilog(write_verilog(nl));
  EXPECT_TRUE(structurally_equal(nl, back));
}

TEST(VerilogRoundtrip, ConstantsSurvive) {
  Netlist nl("consts");
  const auto zero = nl.add_net("zero");
  const auto one = nl.add_net("one");
  const auto y = nl.add_net("y");
  nl.add_gate(netlist::GateType::kConst0, zero, {});
  nl.add_gate(netlist::GateType::kConst1, one, {});
  nl.add_gate(netlist::GateType::kAnd, y, {zero, one});
  nl.mark_primary_output(y);
  const Netlist back = parse_verilog(write_verilog(nl));
  EXPECT_TRUE(structurally_equal(nl, back));
}

TEST(VerilogRoundtrip, EscapedNamesSurvive) {
  Netlist nl("esc");
  // Escaped Verilog identifiers may hold any printable non-space character.
  const auto a = nl.add_net("3starts_with_digit");
  const auto y = nl.add_net("odd.chars[7]");
  nl.mark_primary_input(a);
  nl.add_gate(netlist::GateType::kNot, y, {a});
  nl.mark_primary_output(y);
  const Netlist back = parse_verilog(write_verilog(nl));
  EXPECT_TRUE(structurally_equal(nl, back));
}

// Round-trip sweep across generated family benchmarks: the identification
// pipeline's input format is exactly what the writer emits.
class FamilyRoundtrip : public ::testing::TestWithParam<const char*> {};

TEST_P(FamilyRoundtrip, WriteParsePreservesStructure) {
  const auto bench = itc::build_benchmark(GetParam());
  const Netlist back = parse_verilog(write_verilog(bench.netlist));
  EXPECT_TRUE(structurally_equal(bench.netlist, back));
  EXPECT_TRUE(netlist::validate(back).ok());
}

INSTANTIATE_TEST_SUITE_P(SmallFamily, FamilyRoundtrip,
                         ::testing::Values("b03s", "b08s", "b13s", "b07s"));

}  // namespace
}  // namespace netrev::parser
