#include "parser/bench_parser.h"

#include <gtest/gtest.h>

#include "netlist/validate.h"
#include "parser/lexer.h"

namespace netrev::parser {
namespace {

using netlist::GateType;

constexpr const char* kSample = R"(# tiny
INPUT(a)
INPUT(b)
OUTPUT(q)
n1 = NAND(a, b)
n2 = NOT(n1)
q = DFF(n2)
)";

TEST(BenchParser, ParsesPortsAndGates) {
  const auto nl = parse_bench(kSample);
  EXPECT_EQ(nl.primary_inputs().size(), 2u);
  EXPECT_EQ(nl.primary_outputs().size(), 1u);
  ASSERT_EQ(nl.gate_count(), 3u);
  const auto order = nl.gates_in_file_order();
  EXPECT_EQ(nl.gate(order[0]).type, GateType::kNand);
  EXPECT_EQ(nl.gate(order[1]).type, GateType::kNot);
  EXPECT_EQ(nl.gate(order[2]).type, GateType::kDff);
  EXPECT_TRUE(netlist::validate(nl).ok());
}

TEST(BenchParser, IgnoresCommentsAndBlanks) {
  const auto nl = parse_bench("# c\n\nINPUT(a)\n  # mid\nOUTPUT(y)\ny = NOT(a)  # trail\n");
  EXPECT_EQ(nl.gate_count(), 1u);
}

TEST(BenchParser, VddGndAliases) {
  const auto nl = parse_bench("OUTPUT(y)\none = VDD()\nzero = GND()\ny = AND(one, zero)\n");
  const auto order = nl.gates_in_file_order();
  EXPECT_EQ(nl.gate(order[0]).type, GateType::kConst1);
  EXPECT_EQ(nl.gate(order[1]).type, GateType::kConst0);
}

TEST(BenchParser, RejectsUnknownFunction) {
  EXPECT_THROW(parse_bench("y = MAJ(a, b, c)\n"), ParseError);
}

TEST(BenchParser, RejectsMalformedLine) {
  EXPECT_THROW(parse_bench("this is not a gate\n"), ParseError);
  EXPECT_THROW(parse_bench("y = NOT a\n"), ParseError);
  EXPECT_THROW(parse_bench(" = NOT(a)\n"), ParseError);
}

TEST(BenchParser, RejectsEmptyArgument) {
  EXPECT_THROW(parse_bench("y = AND(a, )\n"), ParseError);
}

TEST(BenchParser, ErrorCarriesLineNumber) {
  try {
    parse_bench("INPUT(a)\ny = BOGUS(a)\n");
    FAIL();
  } catch (const ParseError& err) {
    EXPECT_EQ(err.line(), 2u);
  }
}

TEST(BenchWriter, RoundTripsSample) {
  const auto nl = parse_bench(kSample);
  const auto again = parse_bench(write_bench(nl));
  EXPECT_EQ(again.gate_count(), nl.gate_count());
  EXPECT_EQ(again.net_count(), nl.net_count());
  const auto order_a = nl.gates_in_file_order();
  const auto order_b = again.gates_in_file_order();
  for (std::size_t i = 0; i < order_a.size(); ++i) {
    EXPECT_EQ(nl.gate(order_a[i]).type, again.gate(order_b[i]).type);
    EXPECT_EQ(nl.net(nl.gate(order_a[i]).output).name,
              again.net(again.gate(order_b[i]).output).name);
  }
}

TEST(BenchParser, MissingFileThrows) {
  EXPECT_THROW(parse_bench_file("/nonexistent/x.bench"), std::runtime_error);
}

}  // namespace
}  // namespace netrev::parser
