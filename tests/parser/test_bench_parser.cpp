#include "parser/bench_parser.h"

#include <gtest/gtest.h>

#include "netlist/validate.h"
#include "parser/lexer.h"
#include "pipeline/session.h"

namespace netrev::parser {
namespace {

using netlist::GateType;
using netrev::Session;

constexpr const char* kSample = R"(# tiny
INPUT(a)
INPUT(b)
OUTPUT(q)
n1 = NAND(a, b)
n2 = NOT(n1)
q = DFF(n2)
)";

TEST(BenchParser, ParsesPortsAndGates) {
  const auto nl = parse_bench(kSample);
  EXPECT_EQ(nl.primary_inputs().size(), 2u);
  EXPECT_EQ(nl.primary_outputs().size(), 1u);
  ASSERT_EQ(nl.gate_count(), 3u);
  const auto order = nl.gates_in_file_order();
  EXPECT_EQ(nl.gate(order[0]).type, GateType::kNand);
  EXPECT_EQ(nl.gate(order[1]).type, GateType::kNot);
  EXPECT_EQ(nl.gate(order[2]).type, GateType::kDff);
  EXPECT_TRUE(netlist::validate(nl).ok());
}

TEST(BenchParser, IgnoresCommentsAndBlanks) {
  const auto nl = parse_bench("# c\n\nINPUT(a)\n  # mid\nOUTPUT(y)\ny = NOT(a)  # trail\n");
  EXPECT_EQ(nl.gate_count(), 1u);
}

TEST(BenchParser, VddGndAliases) {
  const auto nl = parse_bench("OUTPUT(y)\none = VDD()\nzero = GND()\ny = AND(one, zero)\n");
  const auto order = nl.gates_in_file_order();
  EXPECT_EQ(nl.gate(order[0]).type, GateType::kConst1);
  EXPECT_EQ(nl.gate(order[1]).type, GateType::kConst0);
}

TEST(BenchParser, RejectsUnknownFunction) {
  EXPECT_THROW(parse_bench("y = MAJ(a, b, c)\n"), ParseError);
}

TEST(BenchParser, RejectsMalformedLine) {
  EXPECT_THROW(parse_bench("this is not a gate\n"), ParseError);
  EXPECT_THROW(parse_bench("y = NOT a\n"), ParseError);
  EXPECT_THROW(parse_bench(" = NOT(a)\n"), ParseError);
}

TEST(BenchParser, RejectsEmptyArgument) {
  EXPECT_THROW(parse_bench("y = AND(a, )\n"), ParseError);
}

TEST(BenchParser, ErrorCarriesLineNumber) {
  try {
    parse_bench("INPUT(a)\ny = BOGUS(a)\n");
    FAIL();
  } catch (const ParseError& err) {
    EXPECT_EQ(err.line(), 2u);
  }
}

TEST(BenchWriter, RoundTripsSample) {
  const auto nl = parse_bench(kSample);
  const auto again = parse_bench(write_bench(nl));
  EXPECT_EQ(again.gate_count(), nl.gate_count());
  EXPECT_EQ(again.net_count(), nl.net_count());
  const auto order_a = nl.gates_in_file_order();
  const auto order_b = again.gates_in_file_order();
  for (std::size_t i = 0; i < order_a.size(); ++i) {
    EXPECT_EQ(nl.gate(order_a[i]).type, again.gate(order_b[i]).type);
    EXPECT_EQ(nl.net(nl.gate(order_a[i]).output).name,
              again.net(again.gate(order_b[i]).output).name);
  }
}

TEST(BenchParser, MissingFileThrowsViaSession) {
  // File access lives in Session::load_netlist now; the parser layer only
  // ever sees source text.
  Session session;
  EXPECT_THROW(session.load_netlist("/nonexistent/x.bench"),
               std::runtime_error);
}

TEST(BenchParser, ErrorCarriesRealColumn) {
  // "y = BOGUS(a)": the unknown function name starts at column 5.
  try {
    parse_bench("INPUT(a)\ny = BOGUS(a)\n");
    FAIL();
  } catch (const ParseError& err) {
    EXPECT_EQ(err.line(), 2u);
    EXPECT_EQ(err.column(), 5u);
  }
  // "y = NOT a": no '(' after the function name, reported at the function.
  try {
    parse_bench("y = NOT a\n");
    FAIL();
  } catch (const ParseError& err) {
    EXPECT_EQ(err.line(), 1u);
    EXPECT_EQ(err.column(), 5u);
  }
}

TEST(BenchParser, EmptyArgumentColumnPointsAtTheGap) {
  try {
    parse_bench("INPUT(a)\ny = AND(a, )\n");
    FAIL();
  } catch (const ParseError& err) {
    EXPECT_EQ(err.line(), 2u);
    EXPECT_GT(err.column(), 1u);
  }
}

TEST(BenchParser, PermissiveSkipsBadLineKeepsRest) {
  diag::Diagnostics diags;
  ParseOptions options;
  options.permissive = true;
  const auto nl = parse_bench(
      "INPUT(a)\nINPUT(b)\nOUTPUT(q)\nn1 = NAND(a, b)\nn2 = BOGUS(n1)\n"
      "q = NOT(n1)\n",
      options, diags);
  EXPECT_EQ(nl.gate_count(), 2u);  // n1 and q survive; n2 is dropped
  EXPECT_EQ(diags.error_count(), 1u);
  ASSERT_FALSE(diags.entries().empty());
  EXPECT_EQ(diags.entries()[0].location.line, 5u);
  EXPECT_GT(diags.entries()[0].location.column, 0u);
  EXPECT_TRUE(diags.usable());
}

TEST(BenchParser, PermissiveKeepsFirstDuplicateDriver) {
  diag::Diagnostics diags;
  ParseOptions options;
  options.permissive = true;
  const auto nl = parse_bench(
      "INPUT(a)\nINPUT(b)\nOUTPUT(q)\nq = AND(a, b)\nq = OR(a, b)\n", options,
      diags);
  ASSERT_EQ(nl.gate_count(), 1u);
  EXPECT_EQ(nl.gate(nl.gates_in_file_order()[0]).type, GateType::kAnd);
  EXPECT_EQ(diags.warning_count(), 1u);
}

TEST(BenchParser, PermissiveStopsAtErrorLimit) {
  std::string source = "INPUT(a)\n";
  for (int i = 0; i < 20; ++i) source += "x" + std::to_string(i) + " = BAD(a)\n";
  diag::Diagnostics diags(/*max_errors=*/3);
  ParseOptions options;
  options.permissive = true;
  (void)parse_bench(source, options, diags);
  EXPECT_TRUE(diags.at_error_limit());
  // All 20 bad lines would have errored; the limit stops recovery early.
  EXPECT_LE(diags.error_count(), 4u);
  EXPECT_GE(diags.note_count(), 1u);  // "giving up" note
}

TEST(BenchParser, FileSizeLimitEnforced) {
  ParseOptions options;
  options.limits.max_file_bytes = 8;
  EXPECT_THROW(
      {
        diag::Diagnostics diags;
        (void)parse_bench(kSample, options, diags);
      },
      ResourceLimitError);

  options.permissive = true;
  diag::Diagnostics diags;
  const auto nl = parse_bench(kSample, options, diags);
  EXPECT_EQ(nl.gate_count(), 0u);
  EXPECT_FALSE(diags.usable());
}

TEST(BenchParser, StrictOverloadMatchesLegacyOutput) {
  const auto legacy = parse_bench(kSample);
  diag::Diagnostics diags;
  const auto strict = parse_bench(kSample, ParseOptions{}, diags);
  EXPECT_TRUE(diags.empty());
  EXPECT_EQ(write_bench(legacy), write_bench(strict));
}

}  // namespace
}  // namespace netrev::parser
