#include "parser/verilog_parser.h"

#include <gtest/gtest.h>

#include "netlist/validate.h"
#include "parser/lexer.h"
#include "pipeline/session.h"

namespace netrev::parser {
namespace {

using netlist::GateType;
using netrev::Session;

constexpr const char* kSmall = R"(
// a small flattened design
module tiny (a, b, q);
  input a;
  input b;
  output q;
  wire n1, n2;
  nand U1 (n1, a, b);
  NOT U2 (n2, n1);
  DFF r0 (q, n2);
endmodule
)";

TEST(VerilogParser, ParsesModuleName) {
  const auto nl = parse_verilog(kSmall);
  EXPECT_EQ(nl.name(), "tiny");
}

TEST(VerilogParser, ParsesPortsAndWires) {
  const auto nl = parse_verilog(kSmall);
  EXPECT_EQ(nl.primary_inputs().size(), 2u);
  EXPECT_EQ(nl.primary_outputs().size(), 1u);
  EXPECT_TRUE(nl.find_net("n1").has_value());
  EXPECT_TRUE(nl.find_net("n2").has_value());
}

TEST(VerilogParser, ParsesGatesInFileOrder) {
  const auto nl = parse_verilog(kSmall);
  const auto order = nl.gates_in_file_order();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(nl.gate(order[0]).type, GateType::kNand);
  EXPECT_EQ(nl.gate(order[1]).type, GateType::kNot);
  EXPECT_EQ(nl.gate(order[2]).type, GateType::kDff);
}

TEST(VerilogParser, PositionalOutputIsFirst) {
  const auto nl = parse_verilog(kSmall);
  const auto n1 = nl.find_net("n1");
  ASSERT_TRUE(n1.has_value());
  const auto drv = nl.driver_of(*n1);
  ASSERT_TRUE(drv.has_value());
  EXPECT_EQ(nl.gate(*drv).type, GateType::kNand);
}

TEST(VerilogParser, ResultValidates) {
  EXPECT_TRUE(netlist::validate(parse_verilog(kSmall)).ok());
}

TEST(VerilogParser, NamedConnectionsAnyOrder) {
  const auto nl = parse_verilog(R"(
module named (a, b, y);
  input a, b;
  output y;
  NAND2_X1 U1 (.B(b), .Y(y), .A(a));
endmodule
)");
  const auto y = nl.find_net("y");
  const auto drv = nl.driver_of(*y);
  ASSERT_TRUE(drv.has_value());
  const auto& gate = nl.gate(*drv);
  EXPECT_EQ(gate.type, GateType::kNand);
  // Input pins sorted by name: A then B.
  EXPECT_EQ(nl.net(gate.inputs[0]).name, "a");
  EXPECT_EQ(nl.net(gate.inputs[1]).name, "b");
}

TEST(VerilogParser, IgnoresClockPins) {
  const auto nl = parse_verilog(R"(
module flopped (clock, d, q);
  input clock, d;
  output q;
  DFF_X1 r0 (.Q(q), .D(d), .CK(clock));
endmodule
)");
  const auto q = nl.find_net("q");
  const auto drv = nl.driver_of(*q);
  ASSERT_TRUE(drv.has_value());
  EXPECT_EQ(nl.gate(*drv).type, GateType::kDff);
  EXPECT_EQ(nl.gate(*drv).inputs.size(), 1u);
}

TEST(VerilogParser, DriveStrengthSuffixesStripped) {
  const auto nl = parse_verilog(R"(
module cells (a, b, y1, y2, y3);
  input a, b;
  output y1, y2, y3;
  NOR3_X4 U1 (y1, a, b, a);
  INV_X2 U2 (y2, a);
  XNOR2X1 U3 (y3, a, b);
endmodule
)");
  EXPECT_EQ(nl.gate(nl.gates_in_file_order()[0]).type, GateType::kNor);
  EXPECT_EQ(nl.gate(nl.gates_in_file_order()[1]).type, GateType::kNot);
  EXPECT_EQ(nl.gate(nl.gates_in_file_order()[2]).type, GateType::kXnor);
}

TEST(VerilogParser, AssignBufferAndConstants) {
  const auto nl = parse_verilog(R"(
module assigns (a, y);
  input a;
  output y;
  wire zero, one;
  assign y = a;
  assign zero = 1'b0;
  assign one = 1'b1;
endmodule
)");
  const auto order = nl.gates_in_file_order();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(nl.gate(order[0]).type, GateType::kBuf);
  EXPECT_EQ(nl.gate(order[1]).type, GateType::kConst0);
  EXPECT_EQ(nl.gate(order[2]).type, GateType::kConst1);
}

TEST(VerilogParser, BusBitsNormalized) {
  const auto nl = parse_verilog(R"(
module bus (a, y);
  input a;
  output y;
  wire d[3];
  BUF U1 (d[3], a);
  BUF U2 (y, d[3]);
endmodule
)");
  EXPECT_TRUE(nl.find_net("d[3]").has_value());
}

TEST(VerilogParser, ImplicitNetsAreDeclared) {
  const auto nl = parse_verilog(R"(
module implicit (a, y);
  input a;
  output y;
  NOT U1 (t, a);
  NOT U2 (y, t);
endmodule
)");
  EXPECT_TRUE(nl.find_net("t").has_value());
  EXPECT_TRUE(netlist::validate(nl).ok());
}

TEST(VerilogParser, ErrorsCarryLocation) {
  try {
    parse_verilog("module m (a);\n input a;\n BOGUS_CELL U1 (a, a);\nendmodule");
    FAIL();
  } catch (const ParseError& err) {
    EXPECT_EQ(err.line(), 3u);
    EXPECT_NE(std::string(err.what()).find("BOGUS_CELL"), std::string::npos);
  }
}

TEST(VerilogParser, RejectsMissingEndmodule) {
  EXPECT_THROW(parse_verilog("module m (a); input a;"), ParseError);
}

TEST(VerilogParser, RejectsDrivingAnInput) {
  EXPECT_THROW(parse_verilog(R"(
module bad (a, b);
  input a, b;
  NOT U1 (a, b);
endmodule
)"),
               ParseError);
}

TEST(VerilogParser, RejectsDoubleDriver) {
  EXPECT_THROW(parse_verilog(R"(
module bad (a, y);
  input a;
  output y;
  NOT U1 (y, a);
  BUF U2 (y, a);
endmodule
)"),
               ParseError);
}

TEST(VerilogParser, RejectsArityViolation) {
  EXPECT_THROW(parse_verilog(R"(
module bad (a, y);
  input a;
  output y;
  NAND2 U1 (y, a);
endmodule
)"),
               ParseError);
}

TEST(VerilogParser, MissingFileThrowsViaSession) {
  // File access lives in Session::load_netlist now; the parser layer only
  // ever sees source text.
  Session session;
  EXPECT_THROW(session.load_netlist("/nonexistent/path.v"),
               std::runtime_error);
}

TEST(VerilogParser, ErrorsCarryRealColumn) {
  // The unknown cell name starts at column 2 of line 3.
  try {
    parse_verilog("module m (a);\n input a;\n BOGUS_CELL U1 (a, a);\nendmodule");
    FAIL();
  } catch (const ParseError& err) {
    EXPECT_EQ(err.line(), 3u);
    EXPECT_EQ(err.column(), 2u);
  }
}

TEST(VerilogParser, PermissiveSkipsBadStatementKeepsRest) {
  diag::Diagnostics diags;
  ParseOptions options;
  options.permissive = true;
  const auto nl = parse_verilog(R"(
module m (a, b, q);
  input a, b;
  output q;
  wire n1;
  NAND2 U1 (n1, a, b);
  BOGUS_CELL U2 (n1, a);
  NOT U3 (q, n1);
endmodule
)",
                                options, diags);
  EXPECT_EQ(nl.gate_count(), 2u);  // U1 and U3 survive, U2 is skipped
  EXPECT_EQ(diags.error_count(), 1u);
  EXPECT_EQ(diags.entries()[0].location.line, 7u);
  EXPECT_GT(diags.entries()[0].location.column, 0u);
  EXPECT_TRUE(diags.usable());
}

TEST(VerilogParser, PermissiveToleratesMissingEndmodule) {
  diag::Diagnostics diags;
  ParseOptions options;
  options.permissive = true;
  const auto nl = parse_verilog("module m (a);\n  input a;\n", options, diags);
  EXPECT_EQ(nl.primary_inputs().size(), 1u);
  EXPECT_GE(diags.error_count(), 1u);
}

TEST(VerilogParser, PermissiveKeepsFirstDuplicateDriver) {
  diag::Diagnostics diags;
  ParseOptions options;
  options.permissive = true;
  const auto nl = parse_verilog(R"(
module m (a, y);
  input a;
  output y;
  NOT U1 (y, a);
  BUF U2 (y, a);
endmodule
)",
                                options, diags);
  ASSERT_EQ(nl.gate_count(), 1u);
  EXPECT_EQ(nl.gate(nl.gates_in_file_order()[0]).type, GateType::kNot);
  EXPECT_EQ(diags.warning_count(), 1u);
}

TEST(VerilogParser, PermissiveRecoversFromHeaderDamage) {
  diag::Diagnostics diags;
  ParseOptions options;
  options.permissive = true;
  const auto nl = parse_verilog(R"(
module !!broken!! ;
  input a;
  wire n1;
  NOT U1 (n1, a);
endmodule
)",
                                options, diags);
  EXPECT_EQ(nl.gate_count(), 1u);
  EXPECT_GE(diags.error_count(), 1u);
}

}  // namespace
}  // namespace netrev::parser
