#include "parser/lexer.h"

#include <gtest/gtest.h>

namespace netrev::parser {
namespace {

std::vector<TokenKind> kinds(const std::vector<Token>& tokens) {
  std::vector<TokenKind> out;
  for (const Token& t : tokens) out.push_back(t.kind);
  return out;
}

TEST(Lexer, EmptyInputYieldsEof) {
  const auto tokens = tokenize("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kEndOfFile);
}

TEST(Lexer, TokenizesInstanceLine) {
  const auto tokens = tokenize("NAND2_X1 U1 (y, a, b);");
  const std::vector<TokenKind> expected = {
      TokenKind::kIdentifier, TokenKind::kIdentifier, TokenKind::kLParen,
      TokenKind::kIdentifier, TokenKind::kComma,      TokenKind::kIdentifier,
      TokenKind::kComma,      TokenKind::kIdentifier, TokenKind::kRParen,
      TokenKind::kSemicolon,  TokenKind::kEndOfFile};
  EXPECT_EQ(kinds(tokens), expected);
  EXPECT_EQ(tokens[0].text, "NAND2_X1");
  EXPECT_EQ(tokens[3].text, "y");
}

TEST(Lexer, SkipsLineComments) {
  const auto tokens = tokenize("a // comment to end\nb");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
}

TEST(Lexer, SkipsBlockComments) {
  const auto tokens = tokenize("a /* multi\nline */ b");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1].text, "b");
}

TEST(Lexer, RejectsUnterminatedBlockComment) {
  EXPECT_THROW(tokenize("a /* never ends"), ParseError);
}

TEST(Lexer, TracksLineAndColumn) {
  const auto tokens = tokenize("a\n  b");
  EXPECT_EQ(tokens[0].line, 1u);
  EXPECT_EQ(tokens[0].column, 1u);
  EXPECT_EQ(tokens[1].line, 2u);
  EXPECT_EQ(tokens[1].column, 3u);
}

TEST(Lexer, EscapedIdentifiers) {
  const auto tokens = tokenize("\\weird[0].name rest");
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[0].text, "weird[0].name");
  EXPECT_EQ(tokens[1].text, "rest");
}

TEST(Lexer, RejectsEmptyEscapedIdentifier) {
  EXPECT_THROW(tokenize("\\ x"), ParseError);
}

TEST(Lexer, Numbers) {
  const auto tokens = tokenize("123");
  EXPECT_EQ(tokens[0].kind, TokenKind::kNumber);
  EXPECT_EQ(tokens[0].text, "123");
}

TEST(Lexer, BitLiterals) {
  const auto tokens = tokenize("1'b0 1'b1");
  ASSERT_GE(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kBitLiteral);
  EXPECT_EQ(tokens[0].text, "0");
  EXPECT_EQ(tokens[1].kind, TokenKind::kBitLiteral);
  EXPECT_EQ(tokens[1].text, "1");
}

TEST(Lexer, RejectsNonBinaryLiteralBase) {
  EXPECT_THROW(tokenize("8'hFF"), ParseError);
}

TEST(Lexer, BracketsAndDots) {
  const auto tokens = tokenize(".A(bus[3])");
  const std::vector<TokenKind> expected = {
      TokenKind::kDot,      TokenKind::kIdentifier, TokenKind::kLParen,
      TokenKind::kIdentifier, TokenKind::kLBracket, TokenKind::kNumber,
      TokenKind::kRBracket, TokenKind::kRParen,     TokenKind::kEndOfFile};
  EXPECT_EQ(kinds(tokens), expected);
}

TEST(Lexer, RejectsStrayCharacters) {
  EXPECT_THROW(tokenize("a @ b"), ParseError);
}

TEST(Lexer, ParseErrorCarriesLocation) {
  try {
    tokenize("ab\ncd @");
    FAIL();
  } catch (const ParseError& err) {
    EXPECT_EQ(err.line(), 2u);
    EXPECT_EQ(err.column(), 4u);
  }
}

TEST(Lexer, KindNamesAreHuman) {
  EXPECT_EQ(token_kind_name(TokenKind::kIdentifier), "identifier");
  EXPECT_EQ(token_kind_name(TokenKind::kSemicolon), "';'");
}

}  // namespace
}  // namespace netrev::parser
