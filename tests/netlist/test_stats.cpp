#include "netlist/stats.h"

#include <gtest/gtest.h>

namespace netrev::netlist {
namespace {

// in -> NOT -> AND(in2) -> DFF -> out; depth 2 combinational.
Netlist sample() {
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");
  const NetId n = nl.add_net("n");
  const NetId x = nl.add_net("x");
  const NetId q = nl.add_net("q");
  nl.mark_primary_input(a);
  nl.mark_primary_input(b);
  nl.add_gate(GateType::kNot, n, {a});
  nl.add_gate(GateType::kAnd, x, {n, b});
  nl.add_gate(GateType::kDff, q, {x});
  nl.mark_primary_output(q);
  return nl;
}

TEST(Stats, CountsEverything) {
  const NetlistStats stats = compute_stats(sample());
  EXPECT_EQ(stats.gates, 3u);
  EXPECT_EQ(stats.nets, 5u);
  EXPECT_EQ(stats.flops, 1u);
  EXPECT_EQ(stats.primary_inputs, 2u);
  EXPECT_EQ(stats.primary_outputs, 1u);
  EXPECT_EQ(stats.by_type[static_cast<std::size_t>(GateType::kNot)], 1u);
  EXPECT_EQ(stats.by_type[static_cast<std::size_t>(GateType::kAnd)], 1u);
  EXPECT_EQ(stats.by_type[static_cast<std::size_t>(GateType::kDff)], 1u);
}

TEST(Stats, ToStringMentionsCounts) {
  const std::string text = compute_stats(sample()).to_string();
  EXPECT_NE(text.find("gates=3"), std::string::npos);
  EXPECT_NE(text.find("flops=1"), std::string::npos);
  EXPECT_NE(text.find("AND=1"), std::string::npos);
}

TEST(Stats, EmptyNetlist) {
  const NetlistStats stats = compute_stats(Netlist{});
  EXPECT_EQ(stats.gates, 0u);
  EXPECT_EQ(stats.nets, 0u);
}

TEST(FaninProfile, AveragesOverCombinationalGates) {
  const FaninProfile profile = compute_fanin_profile(sample());
  EXPECT_EQ(profile.max_fanin, 2u);
  EXPECT_DOUBLE_EQ(profile.average_fanin, 1.5);  // NOT(1) and AND(2)
}

TEST(FaninProfile, EmptyNetlistIsZero) {
  const FaninProfile profile = compute_fanin_profile(Netlist{});
  EXPECT_EQ(profile.max_fanin, 0u);
  EXPECT_DOUBLE_EQ(profile.average_fanin, 0.0);
}

TEST(Depth, CountsLongestCombinationalPath) {
  EXPECT_EQ(combinational_depth(sample()), 2u);
}

TEST(Depth, FlopsCutPaths) {
  // chain: a -> NOT -> DFF -> NOT -> out: two depth-1 segments.
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId n1 = nl.add_net("n1");
  const NetId q = nl.add_net("q");
  const NetId n2 = nl.add_net("n2");
  nl.mark_primary_input(a);
  nl.add_gate(GateType::kNot, n1, {a});
  nl.add_gate(GateType::kDff, q, {n1});
  nl.add_gate(GateType::kNot, n2, {q});
  nl.mark_primary_output(n2);
  EXPECT_EQ(combinational_depth(nl), 1u);
}

TEST(Depth, DeepChain) {
  Netlist nl;
  NetId prev = nl.add_net("a");
  nl.mark_primary_input(prev);
  for (int i = 0; i < 10; ++i) {
    const NetId next = nl.add_net("n" + std::to_string(i));
    nl.add_gate(GateType::kNot, next, {prev});
    prev = next;
  }
  nl.mark_primary_output(prev);
  EXPECT_EQ(combinational_depth(nl), 10u);
}

}  // namespace
}  // namespace netrev::netlist
