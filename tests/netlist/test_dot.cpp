#include "netlist/dot.h"

#include <gtest/gtest.h>

namespace netrev::netlist {
namespace {

struct Fixture {
  Netlist nl;
  NetId a, b, y, z;

  Fixture() {
    a = nl.add_net("a");
    b = nl.add_net("odd\"name");
    y = nl.add_net("y");
    z = nl.add_net("z");
    nl.mark_primary_input(a);
    nl.mark_primary_input(b);
    nl.add_gate(GateType::kNand, y, {a, b});
    nl.add_gate(GateType::kDff, z, {y});
    nl.mark_primary_output(z);
  }
};

TEST(Dot, EmitsNodesAndEdges) {
  Fixture f;
  const std::string dot = to_dot(f.nl);
  EXPECT_NE(dot.find("digraph netlist"), std::string::npos);
  EXPECT_NE(dot.find("NAND"), std::string::npos);
  EXPECT_NE(dot.find("INPUT"), std::string::npos);
  // Edge from a to y.
  EXPECT_NE(dot.find("n0 -> n2"), std::string::npos);
}

TEST(Dot, FlopEdgesAreDashed) {
  Fixture f;
  const std::string dot = to_dot(f.nl);
  EXPECT_NE(dot.find("n2 -> n3 [style=dashed]"), std::string::npos);
}

TEST(Dot, EscapesLabelCharacters) {
  Fixture f;
  const std::string dot = to_dot(f.nl);
  EXPECT_NE(dot.find("odd\\\"name"), std::string::npos);
}

TEST(Dot, HighlightsClusterWords) {
  Fixture f;
  DotOptions options;
  options.highlights.push_back({"word 0", {f.y}});
  const std::string dot = to_dot(f.nl, options);
  EXPECT_NE(dot.find("fillcolor=lightblue"), std::string::npos);
  EXPECT_NE(dot.find("legend0"), std::string::npos);
}

TEST(Dot, ConeDepthLimitsOutput) {
  Fixture f;
  DotOptions options;
  options.highlights.push_back({"w", {f.y}});
  options.cone_depth = 1;
  const std::string dot = to_dot(f.nl, options);
  // z (downstream flop) is outside y's fanin cone.
  EXPECT_EQ(dot.find("\\nz"), std::string::npos);
  EXPECT_NE(dot.find("\\ny"), std::string::npos);
}

TEST(Dot, NamesCanBeSuppressed) {
  Fixture f;
  DotOptions options;
  options.show_net_names = false;
  const std::string dot = to_dot(f.nl, options);
  EXPECT_EQ(dot.find("\\ny"), std::string::npos);
}

}  // namespace
}  // namespace netrev::netlist
