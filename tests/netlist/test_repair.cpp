#include "netlist/repair.h"

#include <gtest/gtest.h>

#include "netlist/validate.h"

namespace netrev::netlist {
namespace {

Netlist clean_netlist() {
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");
  const NetId y = nl.add_net("y");
  nl.mark_primary_input(a);
  nl.mark_primary_input(b);
  nl.add_gate(GateType::kAnd, y, {a, b});
  nl.mark_primary_output(y);
  return nl;
}

TEST(Repair, CleanNetlistIsUntouched) {
  diag::Diagnostics diags;
  const RepairResult result = repair(clean_netlist(), diags);
  EXPECT_FALSE(result.stats.changed());
  EXPECT_TRUE(diags.empty());
  EXPECT_EQ(result.netlist.gate_count(), 1u);
  EXPECT_TRUE(validate(result.netlist).ok());
}

TEST(Repair, TiesOffDanglingNet) {
  Netlist nl = clean_netlist();
  // z = BUF(ghost); ghost has no driver and is not a primary input.
  const NetId ghost = nl.add_net("ghost");
  const NetId z = nl.add_net("z");
  nl.add_gate(GateType::kBuf, z, {ghost});
  nl.mark_primary_output(z);
  ASSERT_FALSE(validate(nl).ok());

  diag::Diagnostics diags;
  const RepairResult result = repair(nl, diags);
  EXPECT_EQ(result.stats.dangling_tied, 1u);
  EXPECT_TRUE(validate(result.netlist).ok());
  // The tie-off is a CONST0 driver on the formerly dangling net.
  const auto net = result.netlist.find_net("ghost");
  ASSERT_TRUE(net.has_value());
  const auto driver = result.netlist.driver_of(*net);
  ASSERT_TRUE(driver.has_value());
  EXPECT_EQ(result.netlist.gate(*driver).type, GateType::kConst0);
  EXPECT_FALSE(diags.empty());
}

TEST(Repair, PrunesFloatingGatesTransitively) {
  Netlist nl = clean_netlist();
  const NetId a = *nl.find_net("a");
  // u = NOT(a); v = BUF(u); neither feeds anything and neither is a PO, so
  // pruning v must also make u floating and prune it too.
  const NetId u = nl.add_net("u");
  const NetId v = nl.add_net("v");
  nl.add_gate(GateType::kNot, u, {a});
  nl.add_gate(GateType::kBuf, v, {u});

  diag::Diagnostics diags;
  const RepairResult result = repair(nl, diags);
  EXPECT_EQ(result.stats.floating_pruned, 2u);
  EXPECT_EQ(result.netlist.gate_count(), 1u);
  EXPECT_FALSE(result.netlist.find_net("u").has_value());
  EXPECT_FALSE(result.netlist.find_net("v").has_value());
  EXPECT_TRUE(validate(result.netlist).ok());
}

TEST(Repair, KeepsFloatingFlops) {
  Netlist nl = clean_netlist();
  const NetId a = *nl.find_net("a");
  const NetId q = nl.add_net("q");
  nl.add_gate(GateType::kDff, q, {a});  // unread flop: architectural state

  diag::Diagnostics diags;
  const RepairResult result = repair(nl, diags);
  EXPECT_EQ(result.stats.floating_pruned, 0u);
  EXPECT_TRUE(result.netlist.find_net("q").has_value());
}

TEST(Repair, KeepsFanoutFreePrimaryOutputs) {
  Netlist nl = clean_netlist();
  const NetId a = *nl.find_net("a");
  const NetId po = nl.add_net("po");
  nl.add_gate(GateType::kNot, po, {a});
  nl.mark_primary_output(po);

  diag::Diagnostics diags;
  const RepairResult result = repair(nl, diags);
  EXPECT_EQ(result.stats.floating_pruned, 0u);
  EXPECT_EQ(result.netlist.gate_count(), 2u);
}

TEST(Repair, OptionsDisableEachPhase) {
  Netlist nl = clean_netlist();
  const NetId ghost = nl.add_net("ghost");
  const NetId z = nl.add_net("z");
  nl.add_gate(GateType::kBuf, z, {ghost});
  nl.mark_primary_output(z);
  const NetId a = *nl.find_net("a");
  const NetId u = nl.add_net("u");
  nl.add_gate(GateType::kNot, u, {a});

  diag::Diagnostics diags;
  RepairOptions keep_floating;
  keep_floating.prune_floating = false;
  const RepairResult tied_only = repair(nl, diags, keep_floating);
  EXPECT_EQ(tied_only.stats.floating_pruned, 0u);
  EXPECT_EQ(tied_only.stats.dangling_tied, 1u);

  RepairOptions keep_dangling;
  keep_dangling.tie_off_dangling = false;
  const RepairResult pruned_only = repair(nl, diags, keep_dangling);
  EXPECT_EQ(pruned_only.stats.dangling_tied, 0u);
  EXPECT_GE(pruned_only.stats.floating_pruned, 1u);
}

TEST(Repair, IsIdempotent) {
  Netlist nl = clean_netlist();
  const NetId ghost = nl.add_net("ghost");
  const NetId z = nl.add_net("z");
  nl.add_gate(GateType::kBuf, z, {ghost});
  nl.mark_primary_output(z);

  diag::Diagnostics diags;
  const RepairResult once = repair(nl, diags);
  diag::Diagnostics diags2;
  const RepairResult twice = repair(once.netlist, diags2);
  EXPECT_FALSE(twice.stats.changed());
  EXPECT_TRUE(diags2.empty());
}

TEST(Repair, EmptyNetlistIsFine) {
  diag::Diagnostics diags;
  const RepairResult result = repair(Netlist(), diags);
  EXPECT_FALSE(result.stats.changed());
  EXPECT_EQ(result.netlist.gate_count(), 0u);
}

}  // namespace
}  // namespace netrev::netlist
