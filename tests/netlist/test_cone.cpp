#include "netlist/cone.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace netrev::netlist {
namespace {

// Ladder:  y = AND(n1, n2); n1 = NOT(a); n2 = OR(b, q); q = DFF(n1).
struct Fixture {
  Netlist nl;
  NetId a, b, n1, n2, q, y;

  Fixture() {
    a = nl.add_net("a");
    b = nl.add_net("b");
    n1 = nl.add_net("n1");
    n2 = nl.add_net("n2");
    q = nl.add_net("q");
    y = nl.add_net("y");
    nl.mark_primary_input(a);
    nl.mark_primary_input(b);
    nl.add_gate(GateType::kNot, n1, {a});
    nl.add_gate(GateType::kDff, q, {n1});
    nl.add_gate(GateType::kOr, n2, {b, q});
    nl.add_gate(GateType::kAnd, y, {n1, n2});
    nl.mark_primary_output(y);
  }
};

bool contains(const std::vector<NetId>& nets, NetId id) {
  return std::find(nets.begin(), nets.end(), id) != nets.end();
}

TEST(FaninCone, DepthZeroIsJustRoot) {
  Fixture f;
  const auto cone = fanin_cone_nets(f.nl, f.y, 0);
  ASSERT_EQ(cone.size(), 1u);
  EXPECT_EQ(cone[0], f.y);
}

TEST(FaninCone, DepthOneReachesDirectInputs) {
  Fixture f;
  const auto cone = fanin_cone_nets(f.nl, f.y, 1);
  EXPECT_TRUE(contains(cone, f.y));
  EXPECT_TRUE(contains(cone, f.n1));
  EXPECT_TRUE(contains(cone, f.n2));
  EXPECT_FALSE(contains(cone, f.a));
  EXPECT_EQ(cone.size(), 3u);
}

TEST(FaninCone, DepthTwoReachesLeavesAndStopsAtFlop) {
  Fixture f;
  const auto cone = fanin_cone_nets(f.nl, f.y, 2);
  EXPECT_TRUE(contains(cone, f.a));
  EXPECT_TRUE(contains(cone, f.b));
  EXPECT_TRUE(contains(cone, f.q));
  // The flop's D input is on the far side of the sequential boundary.
  const auto deep = fanin_cone_nets(f.nl, f.y, 10);
  EXPECT_EQ(deep.size(), cone.size());
}

TEST(FaninCone, DeduplicatesReconvergence) {
  Fixture f;
  // n1 reaches y via both the direct edge and... only once in result.
  const auto cone = fanin_cone_nets(f.nl, f.y, 3);
  EXPECT_EQ(std::count(cone.begin(), cone.end(), f.n1), 1);
}

TEST(FaninConeUnbounded, ExcludesRootIncludesLeaves) {
  Fixture f;
  const auto cone = fanin_cone_unbounded(f.nl, f.y);
  EXPECT_FALSE(cone.contains(f.y));
  EXPECT_TRUE(cone.contains(f.n1));
  EXPECT_TRUE(cone.contains(f.a));
  EXPECT_TRUE(cone.contains(f.q));
}

TEST(FaninConeUnbounded, StopsAtFlops) {
  Fixture f;
  const auto cone = fanin_cone_unbounded(f.nl, f.n2);
  EXPECT_TRUE(cone.contains(f.q));
  // n1 only feeds q through the flop; must not appear.
  EXPECT_FALSE(cone.contains(f.n1));
}

TEST(InFaninCone, PositiveAndNegative) {
  Fixture f;
  EXPECT_TRUE(in_fanin_cone(f.nl, f.y, f.a));
  EXPECT_TRUE(in_fanin_cone(f.nl, f.y, f.q));
  EXPECT_FALSE(in_fanin_cone(f.nl, f.y, f.y));   // root itself excluded
  EXPECT_FALSE(in_fanin_cone(f.nl, f.a, f.y));   // wrong direction
  EXPECT_FALSE(in_fanin_cone(f.nl, f.n2, f.n1)); // blocked by flop
}

TEST(ConeLeaves, BoundaryKinds) {
  Fixture f;
  const auto leaves = cone_leaves(f.nl, f.y, 2);
  // Leaves: a (PI), b (PI), q (flop output).
  EXPECT_TRUE(contains(leaves, f.a));
  EXPECT_TRUE(contains(leaves, f.b));
  EXPECT_TRUE(contains(leaves, f.q));
  EXPECT_FALSE(contains(leaves, f.n1));
}

TEST(ConeLeaves, DepthCutLeaves) {
  Fixture f;
  const auto leaves = cone_leaves(f.nl, f.y, 1);
  EXPECT_TRUE(contains(leaves, f.n1));
  EXPECT_TRUE(contains(leaves, f.n2));
  EXPECT_EQ(leaves.size(), 2u);
}

TEST(ConeLeaves, RootIsLeafAtDepthZero) {
  Fixture f;
  const auto leaves = cone_leaves(f.nl, f.y, 0);
  ASSERT_EQ(leaves.size(), 1u);
  EXPECT_EQ(leaves[0], f.y);
}

}  // namespace
}  // namespace netrev::netlist
