#include "netlist/netlist.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace netrev::netlist {
namespace {

TEST(Netlist, AddNetAssignsSequentialIds) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");
  EXPECT_EQ(a.value(), 0u);
  EXPECT_EQ(b.value(), 1u);
  EXPECT_EQ(nl.net_count(), 2u);
  EXPECT_EQ(nl.net(a).name, "a");
}

TEST(Netlist, RejectsEmptyAndDuplicateNames) {
  Netlist nl;
  nl.add_net("a");
  EXPECT_THROW(nl.add_net("a"), std::invalid_argument);
  EXPECT_THROW(nl.add_net(""), std::invalid_argument);
}

TEST(Netlist, FindOrAddReusesExisting) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  EXPECT_EQ(nl.find_or_add_net("a"), a);
  EXPECT_EQ(nl.net_count(), 1u);
  const NetId b = nl.find_or_add_net("b");
  EXPECT_NE(a, b);
  EXPECT_EQ(nl.net_count(), 2u);
}

TEST(Netlist, FindNetReturnsNulloptForUnknown) {
  Netlist nl;
  EXPECT_EQ(nl.find_net("nope"), std::nullopt);
}

TEST(Netlist, AddGateWiresDriverAndFanout) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");
  const NetId y = nl.add_net("y");
  nl.mark_primary_input(a);
  nl.mark_primary_input(b);
  const GateId g = nl.add_gate(GateType::kAnd, y, {a, b});

  EXPECT_EQ(nl.driver_of(y), g);
  EXPECT_EQ(nl.driver_of(a), std::nullopt);
  ASSERT_EQ(nl.net(a).fanouts.size(), 1u);
  EXPECT_EQ(nl.net(a).fanouts[0], g);
  EXPECT_EQ(nl.gate(g).type, GateType::kAnd);
  ASSERT_EQ(nl.gate(g).inputs.size(), 2u);
}

TEST(Netlist, RejectsDoubleDriver) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId y = nl.add_net("y");
  nl.mark_primary_input(a);
  nl.add_gate(GateType::kBuf, y, {a});
  EXPECT_THROW(nl.add_gate(GateType::kNot, y, {a}), std::invalid_argument);
}

TEST(Netlist, RejectsDrivingPrimaryInput) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");
  nl.mark_primary_input(a);
  nl.mark_primary_input(b);
  EXPECT_THROW(nl.add_gate(GateType::kBuf, a, {b}), std::invalid_argument);
}

TEST(Netlist, RejectsMarkingDrivenNetAsInput) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId y = nl.add_net("y");
  nl.mark_primary_input(a);
  nl.add_gate(GateType::kBuf, y, {a});
  EXPECT_THROW(nl.mark_primary_input(y), std::invalid_argument);
}

TEST(Netlist, RejectsArityViolations) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId y = nl.add_net("y");
  nl.mark_primary_input(a);
  EXPECT_THROW(nl.add_gate(GateType::kAnd, y, {a}), std::invalid_argument);
  EXPECT_THROW(nl.add_gate(GateType::kNot, y, {a, a}), std::invalid_argument);
  EXPECT_THROW(nl.add_gate(GateType::kConst0, y, {a}), std::invalid_argument);
}

TEST(Netlist, GatesInFileOrderFollowsCreation) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  nl.mark_primary_input(a);
  const NetId y1 = nl.add_net("y1");
  const NetId y2 = nl.add_net("y2");
  const GateId g1 = nl.add_gate(GateType::kBuf, y1, {a});
  const GateId g2 = nl.add_gate(GateType::kNot, y2, {y1});
  const auto order = nl.gates_in_file_order();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], g1);
  EXPECT_EQ(order[1], g2);
}

TEST(Netlist, FlopQueries) {
  Netlist nl;
  const NetId d = nl.add_net("d");
  const NetId q = nl.add_net("q");
  nl.mark_primary_input(d);
  nl.add_gate(GateType::kDff, q, {d});
  EXPECT_TRUE(nl.is_flop_output(q));
  EXPECT_FALSE(nl.is_flop_output(d));
  EXPECT_TRUE(nl.feeds_flop(d));
  EXPECT_FALSE(nl.feeds_flop(q));
  EXPECT_EQ(nl.flop_count(), 1u);
  EXPECT_EQ(nl.combinational_gate_count(), 0u);
}

TEST(Netlist, PrimaryPortLists) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");
  const NetId y = nl.add_net("y");
  nl.mark_primary_input(a);
  nl.mark_primary_input(b);
  nl.add_gate(GateType::kOr, y, {a, b});
  nl.mark_primary_output(y);
  EXPECT_EQ(nl.primary_inputs().size(), 2u);
  ASSERT_EQ(nl.primary_outputs().size(), 1u);
  EXPECT_EQ(nl.primary_outputs()[0], y);
}

TEST(Netlist, CopyIsIndependent) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  nl.mark_primary_input(a);
  Netlist copy = nl;
  copy.add_net("b");
  EXPECT_EQ(nl.net_count(), 1u);
  EXPECT_EQ(copy.net_count(), 2u);
}

TEST(Netlist, NameRoundTrip) {
  Netlist nl("design");
  EXPECT_EQ(nl.name(), "design");
  nl.set_name("other");
  EXPECT_EQ(nl.name(), "other");
}

}  // namespace
}  // namespace netrev::netlist
