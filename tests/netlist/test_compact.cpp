// CompactView <-> Netlist equivalence.
//
// The data-oriented core is only allowed to exist because it is
// indistinguishable from the pointer representation: every array of the view
// must mirror the netlist exactly, the levelized orders must be bit-for-bit
// what sim::levelize returns, and the CSR cone walks must visit, return, and
// charge a WorkBudget in exactly the legacy sequence.  These tests pin that
// contract on hand-built designs, the family benchmarks, random netlists,
// and fault-injected (corrupted, then repaired) corpora.
#include "netlist/compact.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "common/diagnostics.h"
#include "common/resource_guard.h"
#include "itc/family.h"
#include "netlist/cone.h"
#include "netlist/netlist.h"
#include "netlist/random_netlist.h"
#include "netlist/repair.h"
#include "parser/bench_parser.h"
#include "parser/parse_options.h"
#include "sim/levelize.h"
#include "support/corrupt.h"

namespace netrev::netlist {
namespace {

// Full structural round-trip: every gate, net, edge, flag, and name of the
// view must match the netlist it was built from.
void expect_mirrors(const CompactView& view, const Netlist& nl) {
  ASSERT_EQ(view.gate_count(), nl.gate_count());
  ASSERT_EQ(view.net_count(), nl.net_count());

  for (std::uint32_t g = 0; g < view.gate_count(); ++g) {
    const Gate& gate = nl.gate(nl.gate_id_at(g));
    EXPECT_EQ(view.gate_type(g), gate.type);
    EXPECT_EQ(view.gate_output(g), gate.output.value());
    const auto fanin = view.fanin(g);
    ASSERT_EQ(fanin.size(), gate.inputs.size());
    for (std::size_t i = 0; i < fanin.size(); ++i)
      EXPECT_EQ(fanin[i], gate.inputs[i].value());
  }

  for (std::uint32_t n = 0; n < view.net_count(); ++n) {
    const NetId id = nl.net_id_at(n);
    const Net& net = nl.net(id);
    const auto driver = nl.driver_of(id);
    if (driver)
      EXPECT_EQ(view.driver(n), driver->value());
    else
      EXPECT_EQ(view.driver(n), CompactView::kNoGate);
    const auto fanout = view.fanout(n);
    ASSERT_EQ(fanout.size(), net.fanouts.size());
    for (std::size_t i = 0; i < fanout.size(); ++i)
      EXPECT_EQ(fanout[i], net.fanouts[i].value());
    EXPECT_EQ(view.is_primary_input(n), net.is_primary_input);
    EXPECT_EQ(view.is_primary_output(n), net.is_primary_output);
    EXPECT_EQ(view.net_name(n), net.name);
    const bool flop_output =
        driver && nl.gate(*driver).type == GateType::kDff;
    EXPECT_EQ(view.is_flop_output(n), flop_output);
  }
}

// The levelization arrays must be bit-for-bit the scalar simulator's
// schedule: same topo order, flops in the same relative order (the RNG draw
// order of randomize_state depends on it), comb_order = topo minus flops.
void expect_levelization_matches(const CompactView& view, const Netlist& nl) {
  ASSERT_TRUE(view.acyclic());
  const std::vector<GateId> order = sim::levelize(nl);
  const auto topo = view.topo_order();
  ASSERT_EQ(topo.size(), order.size());
  for (std::size_t i = 0; i < order.size(); ++i)
    EXPECT_EQ(topo[i], order[i].value());

  std::vector<std::uint32_t> expected_comb;
  std::vector<std::uint32_t> expected_flops;
  for (GateId g : order) {
    if (nl.gate(g).type == GateType::kDff)
      expected_flops.push_back(g.value());
    else
      expected_comb.push_back(g.value());
  }
  EXPECT_TRUE(std::ranges::equal(view.comb_order(), expected_comb));
  EXPECT_TRUE(std::ranges::equal(view.flop_gates(), expected_flops));

  std::vector<std::uint32_t> expected_inputs;
  for (NetId in : nl.primary_inputs()) expected_inputs.push_back(in.value());
  EXPECT_TRUE(std::ranges::equal(view.primary_inputs(), expected_inputs));
  std::vector<std::uint32_t> expected_outputs;
  for (NetId out : nl.primary_outputs())
    expected_outputs.push_back(out.value());
  EXPECT_TRUE(std::ranges::equal(view.primary_outputs(), expected_outputs));
}

// Cone walks: identical result sequences AND identical WorkBudget charge
// totals at every net and depth.
void expect_cones_match(const CompactView& view, const Netlist& nl,
                        std::size_t max_depth) {
  ConeScratch scratch;
  for (std::uint32_t n = 0; n < view.net_count(); ++n) {
    const NetId root = nl.net_id_at(n);
    WorkBudget legacy_budget;
    WorkBudget compact_budget;
    const std::vector<NetId> legacy =
        fanin_cone_nets(nl, root, max_depth, &legacy_budget);
    const std::vector<std::uint32_t> compact =
        view.fanin_cone_nets(n, max_depth, scratch, &compact_budget);
    ASSERT_EQ(compact.size(), legacy.size()) << "root " << nl.net(root).name;
    for (std::size_t i = 0; i < legacy.size(); ++i)
      EXPECT_EQ(compact[i], legacy[i].value());
    EXPECT_EQ(compact_budget.spent(), legacy_budget.spent())
        << "root " << nl.net(root).name << " depth " << max_depth;
  }
}

TEST(CompactView, MirrorsHandBuiltNetlist) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");
  const NetId q = nl.add_net("q");
  const NetId x = nl.add_net("x");
  const NetId y = nl.add_net("y");
  nl.mark_primary_input(a);
  nl.mark_primary_input(b);
  nl.add_gate(GateType::kAnd, x, {a, b});
  nl.add_gate(GateType::kXor, y, {x, q});
  nl.add_gate(GateType::kDff, q, {y});
  nl.mark_primary_output(y);

  const CompactView view = CompactView::build(nl);
  expect_mirrors(view, nl);
  expect_levelization_matches(view, nl);
  EXPECT_TRUE(view.is_flop_output(q.value()));
  EXPECT_TRUE(view.feeds_flop(y.value()));
  EXPECT_FALSE(view.feeds_flop(a.value()));
  EXPECT_GT(view.memory_bytes(), 0u);
}

TEST(CompactView, MirrorsFamilyBenchmarks) {
  for (const char* name : {"b03s", "b08s", "b13s", "b07s", "b12s"}) {
    SCOPED_TRACE(name);
    const Netlist nl = itc::build_benchmark(name).netlist;
    const CompactView view = CompactView::build(nl);
    expect_mirrors(view, nl);
    expect_levelization_matches(view, nl);
  }
}

TEST(CompactView, MirrorsRandomNetlists) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE(seed);
    RandomNetlistSpec spec;
    spec.seed = seed;
    spec.combinational_gates = 120 + seed * 17;
    spec.flops = 4 + seed;
    spec.include_constants = seed % 2 == 0;
    const Netlist nl = random_netlist(spec);
    const CompactView view = CompactView::build(nl);
    expect_mirrors(view, nl);
    expect_levelization_matches(view, nl);
  }
}

TEST(CompactView, ConeWalksMatchLegacyOnFamilyBenchmarks) {
  for (const char* name : {"b03s", "b08s", "b13s"}) {
    SCOPED_TRACE(name);
    const Netlist nl = itc::build_benchmark(name).netlist;
    const CompactView view = CompactView::build(nl);
    for (std::size_t depth : {std::size_t{0}, std::size_t{3}, std::size_t{64}})
      expect_cones_match(view, nl, depth);
  }
}

TEST(CompactView, InFaninConeMatchesLegacy) {
  const Netlist nl = itc::build_benchmark("b08s").netlist;
  const CompactView view = CompactView::build(nl);
  ConeScratch scratch;
  // Dense pair sweep on a small benchmark: identical verdicts everywhere.
  const std::size_t n = nl.net_count();
  for (std::size_t r = 0; r < n; r += 7) {
    for (std::size_t c = 0; c < n; c += 5) {
      const NetId root = nl.net_id_at(r);
      const NetId candidate = nl.net_id_at(c);
      WorkBudget legacy_budget;
      WorkBudget compact_budget;
      EXPECT_EQ(view.in_fanin_cone(static_cast<std::uint32_t>(r),
                                   static_cast<std::uint32_t>(c), scratch,
                                   &compact_budget),
                in_fanin_cone(nl, root, candidate, &legacy_budget));
      EXPECT_EQ(compact_budget.spent(), legacy_budget.spent())
          << "root " << r << " candidate " << c;
    }
  }
}

TEST(CompactView, ConeWalksTripBudgetAtTheSameLimit) {
  // The determinism contract includes *which* walk exhausts a shared budget:
  // with the exact limit the legacy walk needs, both cores succeed; one unit
  // less and both throw.
  const Netlist nl = itc::build_benchmark("b13s").netlist;
  const CompactView view = CompactView::build(nl);
  // Pick the net with the deepest cone so the limit bites mid-walk.
  NetId root = nl.net_id_at(0);
  std::size_t needed = 0;
  for (std::size_t n = 0; n < nl.net_count(); ++n) {
    WorkBudget probe;
    fanin_cone_nets(nl, nl.net_id_at(n), 64, &probe);
    if (probe.spent() > needed) {
      needed = probe.spent();
      root = nl.net_id_at(n);
    }
  }
  ASSERT_GT(needed, 1u);

  ConeScratch scratch;
  WorkBudget exact_legacy(needed), exact_compact(needed);
  EXPECT_NO_THROW(fanin_cone_nets(nl, root, 64, &exact_legacy));
  EXPECT_NO_THROW(
      view.fanin_cone_nets(root.value(), 64, scratch, &exact_compact));

  WorkBudget tight_legacy(needed - 1), tight_compact(needed - 1);
  EXPECT_THROW(fanin_cone_nets(nl, root, 64, &tight_legacy),
               ResourceLimitError);
  EXPECT_THROW(view.fanin_cone_nets(root.value(), 64, scratch, &tight_compact),
               ResourceLimitError);
}

TEST(CompactView, ScratchReuseAcrossWalksIsClean) {
  // One scratch across many walks (the thread_local usage pattern): results
  // must be independent of what previous walks marked.
  const Netlist nl = itc::build_benchmark("b03s").netlist;
  const CompactView view = CompactView::build(nl);
  ConeScratch reused;
  for (std::uint32_t n = 0; n < view.net_count(); ++n) {
    ConeScratch fresh;
    EXPECT_EQ(view.fanin_cone_nets(n, 4, reused),
              view.fanin_cone_nets(n, 4, fresh));
  }
}

TEST(CompactView, MirrorsFaultInjectedCorpora) {
  // Corrupted sources pushed through the permissive parse + repair pipeline
  // still round-trip: whatever netlist survives, the view mirrors it.  When
  // repair leaves a combinational cycle the view must say so instead of
  // producing a bogus schedule.
  const std::string source =
      parser::write_bench(itc::build_benchmark("b03s").netlist);
  for (const testing::CorruptionKind kind : testing::kAllCorruptionKinds) {
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
      SCOPED_TRACE(std::string(testing::corruption_name(kind)) + "/" +
                   std::to_string(seed));
      const std::string damaged = testing::corrupt(source, kind, seed);
      diag::Diagnostics diags;
      parser::ParseOptions options;
      options.permissive = true;
      Netlist parsed = parser::parse_bench(damaged, options, diags);
      RepairResult repaired = repair(parsed, diags);
      const CompactView view = CompactView::build(repaired.netlist);
      expect_mirrors(view, repaired.netlist);
      if (view.acyclic()) {
        expect_levelization_matches(view, repaired.netlist);
        expect_cones_match(view, repaired.netlist, 4);
      } else {
        EXPECT_TRUE(view.topo_order().empty());
        EXPECT_TRUE(view.comb_order().empty());
      }
    }
  }
}

TEST(CompactView, CyclicDesignReportsNotAcyclic) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId x = nl.add_net("x");
  const NetId y = nl.add_net("y");
  nl.mark_primary_input(a);
  nl.add_gate(GateType::kAnd, x, {a, y});
  nl.add_gate(GateType::kOr, y, {x, a});
  nl.mark_primary_output(y);
  const CompactView view = CompactView::build(nl);
  EXPECT_FALSE(view.acyclic());
  EXPECT_TRUE(view.topo_order().empty());
  // Adjacency still mirrors the netlist (lint-style consumers need it).
  expect_mirrors(view, nl);
}

TEST(CompactView, MemoryFootprintIsFlat) {
  // The bytes-per-gate story in docs/PERFORMANCE.md: the flat image of a
  // family benchmark stays within a small constant of its edge count.
  const Netlist nl = itc::build_benchmark("b13s").netlist;
  const CompactView view = CompactView::build(nl);
  const std::size_t bytes = view.memory_bytes();
  EXPECT_GT(bytes, 0u);
  // Generous ceiling: ~200 bytes per gate would already be pathological for
  // a SoA/CSR layout of a max-fanin-8 netlist.
  EXPECT_LT(bytes, nl.gate_count() * 200);
}

}  // namespace
}  // namespace netrev::netlist
