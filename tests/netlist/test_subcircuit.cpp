#include "netlist/subcircuit.h"

#include <gtest/gtest.h>

#include "netlist/validate.h"

namespace netrev::netlist {
namespace {

struct Fixture {
  Netlist nl;
  NetId a, b, c, n1, n2, y, z;

  Fixture() {
    a = nl.add_net("a");
    b = nl.add_net("b");
    c = nl.add_net("c");
    n1 = nl.add_net("n1");
    n2 = nl.add_net("n2");
    y = nl.add_net("y");
    z = nl.add_net("z");
    nl.mark_primary_input(a);
    nl.mark_primary_input(b);
    nl.mark_primary_input(c);
    nl.add_gate(GateType::kAnd, n1, {a, b});
    nl.add_gate(GateType::kOr, n2, {n1, c});
    nl.add_gate(GateType::kNand, y, {n1, n2});
    nl.add_gate(GateType::kNot, z, {c});
    nl.mark_primary_output(y);
    nl.mark_primary_output(z);
  }
};

TEST(Subcircuit, ExtractsFullConeAsValidNetlist) {
  Fixture f;
  const Netlist extract = extract_cone(f.nl, f.y, 4);
  EXPECT_TRUE(validate(extract).ok());
  EXPECT_TRUE(extract.find_net("y").has_value());
  EXPECT_TRUE(extract.find_net("n1").has_value());
  EXPECT_TRUE(extract.find_net("a").has_value());
  // z's cone is unrelated and must not leak in.
  EXPECT_FALSE(extract.find_net("z").has_value());
}

TEST(Subcircuit, RootBecomesPrimaryOutput) {
  Fixture f;
  const Netlist extract = extract_cone(f.nl, f.y, 4);
  const auto y = extract.find_net("y");
  ASSERT_TRUE(y.has_value());
  EXPECT_TRUE(extract.net(*y).is_primary_output);
}

TEST(Subcircuit, CutNetsBecomePrimaryInputs) {
  Fixture f;
  const Netlist extract = extract_cone(f.nl, f.y, 1);
  // Depth 1: only the NAND is kept; n1 and n2 are cut -> primary inputs.
  EXPECT_EQ(extract.gate_count(), 1u);
  const auto n1 = extract.find_net("n1");
  ASSERT_TRUE(n1.has_value());
  EXPECT_TRUE(extract.net(*n1).is_primary_input);
}

TEST(Subcircuit, PreservesGateTypesAndConnectivity) {
  Fixture f;
  const Netlist extract = extract_cone(f.nl, f.y, 4);
  const auto y = extract.find_net("y");
  const auto driver = extract.driver_of(*y);
  ASSERT_TRUE(driver.has_value());
  EXPECT_EQ(extract.gate(*driver).type, GateType::kNand);
  EXPECT_EQ(extract.gate(*driver).inputs.size(), 2u);
}

TEST(Subcircuit, MultipleRootsShareLogic) {
  Fixture f;
  const NetId roots[] = {f.y, f.n2};
  const Netlist extract = extract_cones(f.nl, roots, 4);
  EXPECT_TRUE(validate(extract).ok());
  // Shared n1 logic appears once.
  EXPECT_EQ(extract.gate_count(), 3u);  // AND, OR, NAND
  EXPECT_EQ(extract.primary_outputs().size(), 2u);
}

TEST(Subcircuit, PreservesRelativeFileOrder) {
  Fixture f;
  const Netlist extract = extract_cone(f.nl, f.y, 4);
  const auto order = extract.gates_in_file_order();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(extract.gate(order[0]).type, GateType::kAnd);
  EXPECT_EQ(extract.gate(order[1]).type, GateType::kOr);
  EXPECT_EQ(extract.gate(order[2]).type, GateType::kNand);
}

TEST(Subcircuit, FlopBoundedExtraction) {
  Netlist nl;
  const NetId d = nl.add_net("d");
  const NetId q = nl.add_net("q");
  const NetId y = nl.add_net("y");
  nl.mark_primary_input(d);
  nl.add_gate(GateType::kDff, q, {d});
  nl.add_gate(GateType::kNot, y, {q});
  nl.mark_primary_output(y);
  const Netlist extract = extract_cone(nl, y, 4);
  // The flop output becomes an input of the extract (cone stops there).
  const auto q_net = extract.find_net("q");
  ASSERT_TRUE(q_net.has_value());
  EXPECT_TRUE(extract.net(*q_net).is_primary_input);
  EXPECT_EQ(extract.gate_count(), 1u);
}

}  // namespace
}  // namespace netrev::netlist
