#include "netlist/random_netlist.h"

#include <gtest/gtest.h>

#include "common/contracts.h"
#include "netlist/compare.h"
#include "netlist/stats.h"
#include "netlist/validate.h"

namespace netrev::netlist {
namespace {

TEST(RandomNetlist, MatchesRequestedSizes) {
  RandomNetlistSpec spec;
  spec.primary_inputs = 5;
  spec.combinational_gates = 40;
  spec.flops = 6;
  spec.seed = 3;
  const Netlist nl = random_netlist(spec);
  const NetlistStats stats = compute_stats(nl);
  EXPECT_EQ(stats.primary_inputs, 5u);
  EXPECT_EQ(stats.flops, 6u);
  EXPECT_EQ(stats.gates, 46u);  // comb + flops
}

TEST(RandomNetlist, DeterministicPerSeed) {
  RandomNetlistSpec spec;
  spec.seed = 17;
  const Netlist a = random_netlist(spec);
  const Netlist b = random_netlist(spec);
  EXPECT_TRUE(structurally_equal(a, b));
}

TEST(RandomNetlist, DifferentSeedsDiffer) {
  RandomNetlistSpec a_spec, b_spec;
  a_spec.seed = 1;
  b_spec.seed = 2;
  EXPECT_FALSE(
      structurally_equal(random_netlist(a_spec), random_netlist(b_spec)));
}

TEST(RandomNetlist, AlwaysValid) {
  for (std::uint64_t seed = 100; seed < 110; ++seed) {
    RandomNetlistSpec spec;
    spec.seed = seed;
    spec.include_constants = seed % 2 == 0;
    const auto report = validate(random_netlist(spec));
    EXPECT_TRUE(report.ok()) << "seed " << seed << ": " << report.to_string();
  }
}

TEST(RandomNetlist, RespectsMaxFanin) {
  RandomNetlistSpec spec;
  spec.max_fanin = 3;
  spec.seed = 9;
  const Netlist nl = random_netlist(spec);
  EXPECT_LE(compute_fanin_profile(nl).max_fanin, 3u);
}

TEST(RandomNetlist, FlopNamesCarryIndices) {
  RandomNetlistSpec spec;
  spec.flops = 3;
  const Netlist nl = random_netlist(spec);
  EXPECT_TRUE(nl.find_net("q_reg_0_").has_value());
  EXPECT_TRUE(nl.is_flop_output(*nl.find_net("q_reg_2_")));
}

TEST(RandomNetlist, RejectsDegenerateSpecs) {
  RandomNetlistSpec spec;
  spec.primary_inputs = 0;
  EXPECT_THROW(random_netlist(spec), ContractViolation);
  spec.primary_inputs = 4;
  spec.max_fanin = 1;
  EXPECT_THROW(random_netlist(spec), ContractViolation);
}

}  // namespace
}  // namespace netrev::netlist
