#include "netlist/validate.h"

#include <gtest/gtest.h>

namespace netrev::netlist {
namespace {

// a fully-wired AND of two inputs feeding an output.
Netlist well_formed() {
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");
  const NetId y = nl.add_net("y");
  nl.mark_primary_input(a);
  nl.mark_primary_input(b);
  nl.add_gate(GateType::kAnd, y, {a, b});
  nl.mark_primary_output(y);
  return nl;
}

TEST(Validate, CleanNetlistPasses) {
  const auto report = validate(well_formed());
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.error_count(), 0u);
  EXPECT_EQ(report.warning_count(), 0u);
}

TEST(Validate, DanglingNetIsError) {
  Netlist nl = well_formed();
  nl.add_net("floating_source");
  const NetId z = nl.add_net("z");
  nl.add_gate(GateType::kBuf, z, {*nl.find_net("floating_source")});
  nl.mark_primary_output(z);
  const auto report = validate(nl);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("floating_source"), std::string::npos);
}

TEST(Validate, FanoutFreeInternalNetIsWarning) {
  Netlist nl = well_formed();
  const NetId z = nl.add_net("unused");
  nl.add_gate(GateType::kNot, z, {*nl.find_net("a")});
  const auto report = validate(nl);
  EXPECT_TRUE(report.ok());  // warning only
  EXPECT_EQ(report.warning_count(), 1u);
}

TEST(Validate, DuplicateGateInputIsWarning) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId y = nl.add_net("y");
  nl.mark_primary_input(a);
  nl.add_gate(GateType::kAnd, y, {a, a});
  nl.mark_primary_output(y);
  const auto report = validate(nl);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.warning_count(), 1u);
}

TEST(Validate, CombinationalCycleIsError) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId x = nl.add_net("x");
  const NetId y = nl.add_net("y");
  nl.mark_primary_input(a);
  nl.add_gate(GateType::kAnd, x, {a, y});
  nl.add_gate(GateType::kOr, y, {a, x});
  nl.mark_primary_output(y);
  const auto report = validate(nl);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("cycle"), std::string::npos);
}

TEST(Validate, FlopBreaksCycle) {
  // x = AND(a, q); q = DFF(x): sequential loop, combinationally acyclic.
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId x = nl.add_net("x");
  const NetId q = nl.add_net("q");
  nl.mark_primary_input(a);
  nl.add_gate(GateType::kAnd, x, {a, q});
  nl.add_gate(GateType::kDff, q, {x});
  nl.mark_primary_output(q);
  EXPECT_TRUE(validate(nl).ok());
}

TEST(Validate, SelfLoopIsError) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId x = nl.add_net("x");
  nl.mark_primary_input(a);
  nl.add_gate(GateType::kAnd, x, {a, x});
  nl.mark_primary_output(x);
  EXPECT_FALSE(validate(nl).ok());
}

TEST(Validate, ZeroGateNetlistPasses) {
  // Degenerate but legal: no gates at all, and even no nets at all.
  EXPECT_TRUE(validate(Netlist()).ok());

  Netlist wires_only;
  const NetId a = wires_only.add_net("a");
  wires_only.mark_primary_input(a);
  wires_only.mark_primary_output(a);
  const auto report = validate(wires_only);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.error_count(), 0u);
}

TEST(Validate, SecondDriverIsRejectedAtConstruction) {
  // The netlist representation forbids multi-driver nets outright, so the
  // invariant validate() relies on is enforced by add_gate.
  Netlist nl = well_formed();
  const NetId y = *nl.find_net("y");
  const NetId a = *nl.find_net("a");
  EXPECT_THROW(nl.add_gate(GateType::kNot, y, {a}), std::invalid_argument);
  EXPECT_TRUE(validate(nl).ok());  // the rejected gate left no trace
}

TEST(Validate, DrivingPrimaryInputIsRejectedAtConstruction) {
  Netlist nl = well_formed();
  const NetId a = *nl.find_net("a");
  const NetId b = *nl.find_net("b");
  EXPECT_THROW(nl.add_gate(GateType::kBuf, a, {b}), std::invalid_argument);
  EXPECT_TRUE(validate(nl).ok());
}

TEST(Validate, MarkingDrivenNetAsPrimaryInputIsRejected) {
  Netlist nl = well_formed();
  const NetId y = *nl.find_net("y");
  EXPECT_THROW(nl.mark_primary_input(y), std::invalid_argument);
}

TEST(Validate, SelfLoopThroughFlopIsLegal) {
  // q = DFF(q): a flop feeding itself is sequential state, not a
  // combinational cycle.
  Netlist nl;
  const NetId q = nl.add_net("q");
  nl.add_gate(GateType::kDff, q, {q});
  nl.mark_primary_output(q);
  EXPECT_TRUE(validate(nl).ok());
}

TEST(Validate, ReportRendersSeverities) {
  Netlist nl = well_formed();
  nl.add_net("dangling");
  const NetId z = nl.add_net("z");
  nl.add_gate(GateType::kBuf, z, {*nl.find_net("dangling")});
  const auto report = validate(nl);
  const std::string text = report.to_string();
  EXPECT_NE(text.find("error:"), std::string::npos);
  EXPECT_NE(text.find("warning:"), std::string::npos);
}

}  // namespace
}  // namespace netrev::netlist
