#include "netlist/gate_type.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/contracts.h"

namespace netrev::netlist {
namespace {

std::vector<GateType> all_types() {
  std::vector<GateType> types;
  for (int i = 0; i < kGateTypeCount; ++i)
    types.push_back(static_cast<GateType>(i));
  return types;
}

TEST(GateTypeNames, RoundTripThroughParser) {
  for (GateType type : all_types())
    EXPECT_EQ(gate_type_from_name(gate_type_name(type)), type);
}

TEST(GateTypeNames, ParseIsCaseInsensitive) {
  EXPECT_EQ(gate_type_from_name("nand"), GateType::kNand);
  EXPECT_EQ(gate_type_from_name("Nor"), GateType::kNor);
}

TEST(GateTypeNames, AcceptsVerilogSpellings) {
  EXPECT_EQ(gate_type_from_name("INV"), GateType::kNot);
  EXPECT_EQ(gate_type_from_name("BUFF"), GateType::kBuf);
}

TEST(GateTypeNames, RejectsUnknown) {
  EXPECT_EQ(gate_type_from_name("AOI21"), std::nullopt);
  EXPECT_EQ(gate_type_from_name(""), std::nullopt);
}

TEST(GateTypeCodes, AreUniqueAcrossTypes) {
  std::vector<char> codes;
  for (GateType type : all_types()) codes.push_back(gate_type_code(type));
  std::sort(codes.begin(), codes.end());
  EXPECT_EQ(std::adjacent_find(codes.begin(), codes.end()), codes.end());
}

TEST(GateArity, BoundsMatchSemantics) {
  EXPECT_EQ(min_arity(GateType::kConst0), 0);
  EXPECT_EQ(max_arity(GateType::kConst1), 0);
  EXPECT_EQ(min_arity(GateType::kNot), 1);
  EXPECT_EQ(max_arity(GateType::kBuf), 1);
  EXPECT_EQ(min_arity(GateType::kNand), 2);
  EXPECT_GT(max_arity(GateType::kXor), 8);
  EXPECT_EQ(min_arity(GateType::kDff), 1);
}

TEST(ControllingValues, AndFamily) {
  EXPECT_EQ(controlling_value(GateType::kAnd), false);
  EXPECT_EQ(controlling_value(GateType::kNand), false);
  EXPECT_EQ(controlling_value(GateType::kOr), true);
  EXPECT_EQ(controlling_value(GateType::kNor), true);
}

TEST(ControllingValues, AbsentForParityAndUnary) {
  EXPECT_EQ(controlling_value(GateType::kXor), std::nullopt);
  EXPECT_EQ(controlling_value(GateType::kXnor), std::nullopt);
  EXPECT_EQ(controlling_value(GateType::kNot), std::nullopt);
  EXPECT_EQ(controlling_value(GateType::kBuf), std::nullopt);
  EXPECT_EQ(controlling_value(GateType::kDff), std::nullopt);
}

TEST(ControlledOutput, MatchesTruthTables) {
  EXPECT_FALSE(controlled_output(GateType::kAnd));   // 0 in -> 0 out
  EXPECT_TRUE(controlled_output(GateType::kNand));   // 0 in -> 1 out
  EXPECT_TRUE(controlled_output(GateType::kOr));     // 1 in -> 1 out
  EXPECT_FALSE(controlled_output(GateType::kNor));   // 1 in -> 0 out
}

TEST(ControlledOutput, RejectsTypesWithoutControllingValue) {
  EXPECT_THROW(controlled_output(GateType::kXor), ContractViolation);
}

TEST(BaseInversion, InvertingTypes) {
  EXPECT_TRUE(base_inversion(GateType::kNot));
  EXPECT_TRUE(base_inversion(GateType::kNand));
  EXPECT_TRUE(base_inversion(GateType::kNor));
  EXPECT_TRUE(base_inversion(GateType::kXnor));
  EXPECT_FALSE(base_inversion(GateType::kAnd));
  EXPECT_FALSE(base_inversion(GateType::kBuf));
}

// Exhaustive truth-table check of eval_gate for 2-input gates.
struct TruthCase {
  GateType type;
  bool expect[4];  // indexed by (a<<1)|b
};

class EvalGate2 : public ::testing::TestWithParam<TruthCase> {};

TEST_P(EvalGate2, MatchesTruthTable) {
  const TruthCase& c = GetParam();
  for (int a = 0; a < 2; ++a)
    for (int b = 0; b < 2; ++b) {
      const bool ins[] = {a != 0, b != 0};
      EXPECT_EQ(eval_gate(c.type, ins), c.expect[(a << 1) | b])
          << gate_type_name(c.type) << "(" << a << "," << b << ")";
    }
}

INSTANTIATE_TEST_SUITE_P(
    TruthTables, EvalGate2,
    ::testing::Values(
        TruthCase{GateType::kAnd, {false, false, false, true}},
        TruthCase{GateType::kNand, {true, true, true, false}},
        TruthCase{GateType::kOr, {false, true, true, true}},
        TruthCase{GateType::kNor, {true, false, false, false}},
        TruthCase{GateType::kXor, {false, true, true, false}},
        TruthCase{GateType::kXnor, {true, false, false, true}}));

TEST(EvalGate, UnaryAndConstants) {
  const bool t[] = {true};
  const bool f[] = {false};
  EXPECT_TRUE(eval_gate(GateType::kBuf, t));
  EXPECT_FALSE(eval_gate(GateType::kNot, t));
  EXPECT_TRUE(eval_gate(GateType::kNot, f));
  EXPECT_TRUE(eval_gate(GateType::kDff, t));
  EXPECT_FALSE(eval_gate(GateType::kConst0, {}));
  EXPECT_TRUE(eval_gate(GateType::kConst1, {}));
}

TEST(EvalGate, WideGates) {
  const bool ins[] = {true, true, false, true};
  EXPECT_FALSE(eval_gate(GateType::kAnd, ins));
  EXPECT_TRUE(eval_gate(GateType::kNand, ins));
  EXPECT_TRUE(eval_gate(GateType::kOr, ins));
  EXPECT_TRUE(eval_gate(GateType::kXor, ins));   // three ones
  EXPECT_FALSE(eval_gate(GateType::kXnor, ins));
}

TEST(EvalGate, RejectsArityViolation) {
  const bool one[] = {true};
  EXPECT_THROW(eval_gate(GateType::kAnd, one), ContractViolation);
}

// Property: controlling value really controls, for every input width.
class ControllingSweep
    : public ::testing::TestWithParam<std::tuple<GateType, int>> {};

TEST_P(ControllingSweep, ControllingInputForcesOutput) {
  const auto [type, width] = GetParam();
  const bool cv = *controlling_value(type);
  std::vector<bool> storage(static_cast<std::size_t>(width));
  // Try every position for the controlling input, other inputs all !cv.
  for (int pos = 0; pos < width; ++pos) {
    for (int i = 0; i < width; ++i) storage[static_cast<std::size_t>(i)] = !cv;
    storage[static_cast<std::size_t>(pos)] = cv;
    std::vector<bool> copy = storage;
    std::unique_ptr<bool[]> raw(new bool[copy.size()]);
    for (std::size_t i = 0; i < copy.size(); ++i) raw[i] = copy[i];
    EXPECT_EQ(eval_gate(type, std::span<const bool>(raw.get(), copy.size())),
              controlled_output(type));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Widths, ControllingSweep,
    ::testing::Combine(::testing::Values(GateType::kAnd, GateType::kNand,
                                         GateType::kOr, GateType::kNor),
                       ::testing::Values(2, 3, 4, 7)));

}  // namespace
}  // namespace netrev::netlist
