#include "netlist/compare.h"

#include <gtest/gtest.h>

namespace netrev::netlist {
namespace {

Netlist sample() {
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");
  const NetId y = nl.add_net("y");
  nl.mark_primary_input(a);
  nl.mark_primary_input(b);
  nl.add_gate(GateType::kNand, y, {a, b});
  nl.mark_primary_output(y);
  return nl;
}

TEST(Compare, EqualDesigns) {
  EXPECT_TRUE(structurally_equal(sample(), sample()));
  EXPECT_EQ(structural_difference(sample(), sample()), std::nullopt);
}

TEST(Compare, DetectsMissingNet) {
  Netlist a = sample();
  Netlist b = sample();
  b.add_net("extra");
  const auto diff = structural_difference(a, b);
  ASSERT_TRUE(diff.has_value());
  EXPECT_NE(diff->find("net counts"), std::string::npos);
}

TEST(Compare, DetectsRenamedNet) {
  Netlist a = sample();
  Netlist b;
  const NetId x = b.add_net("a");
  const NetId w = b.add_net("RENAMED");
  const NetId y = b.add_net("y");
  b.mark_primary_input(x);
  b.mark_primary_input(w);
  b.add_gate(GateType::kNand, y, {x, w});
  b.mark_primary_output(y);
  const auto diff = structural_difference(a, b);
  ASSERT_TRUE(diff.has_value());
  EXPECT_NE(diff->find("missing"), std::string::npos);
}

TEST(Compare, DetectsPortDirectionChange) {
  Netlist a = sample();
  Netlist b = sample();
  b.mark_primary_output(*b.find_net("a"));
  const auto diff = structural_difference(a, b);
  ASSERT_TRUE(diff.has_value());
  EXPECT_NE(diff->find("primary-output"), std::string::npos);
}

TEST(Compare, DetectsGateTypeChange) {
  Netlist a = sample();
  Netlist b;
  const NetId x = b.add_net("a");
  const NetId w = b.add_net("b");
  const NetId y = b.add_net("y");
  b.mark_primary_input(x);
  b.mark_primary_input(w);
  b.add_gate(GateType::kNor, y, {x, w});
  b.mark_primary_output(y);
  const auto diff = structural_difference(a, b);
  ASSERT_TRUE(diff.has_value());
  EXPECT_NE(diff->find("type differs"), std::string::npos);
}

TEST(Compare, DetectsInputOrderChange) {
  Netlist a = sample();
  Netlist b;
  const NetId x = b.add_net("a");
  const NetId w = b.add_net("b");
  const NetId y = b.add_net("y");
  b.mark_primary_input(x);
  b.mark_primary_input(w);
  b.add_gate(GateType::kNand, y, {w, x});  // swapped
  b.mark_primary_output(y);
  const auto diff = structural_difference(a, b);
  ASSERT_TRUE(diff.has_value());
  EXPECT_NE(diff->find("input 0 differs"), std::string::npos);
}

}  // namespace
}  // namespace netrev::netlist
