// Chaos-spec parsing and matching.  The injection modes themselves are
// exercised end-to-end by the isolation tests (tests/pipeline/
// test_isolation.cpp) and the check.sh chaos gate — a unit test cannot
// survive its own std::abort().
#include "exec/chaos.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

namespace netrev::exec {
namespace {

TEST(Chaos, ParsesModeStageAndOptionalMatch) {
  const auto plain = parse_chaos_spec("abort@identify");
  ASSERT_TRUE(plain.has_value());
  EXPECT_EQ(plain->mode, ChaosSpec::Mode::kAbort);
  EXPECT_EQ(plain->stage, "identify");
  EXPECT_EQ(plain->match, "");

  const auto matched = parse_chaos_spec("segv@lift:b04s");
  ASSERT_TRUE(matched.has_value());
  EXPECT_EQ(matched->mode, ChaosSpec::Mode::kSegv);
  EXPECT_EQ(matched->stage, "lift");
  EXPECT_EQ(matched->match, "b04s");

  EXPECT_EQ(parse_chaos_spec("hang@parse")->mode, ChaosSpec::Mode::kHang);
  EXPECT_EQ(parse_chaos_spec("oom@identify")->mode, ChaosSpec::Mode::kOom);
}

TEST(Chaos, MatchMayContainColons) {
  // Only the first ':' separates stage from match; a path-ish match with
  // its own colon must survive.
  const auto spec = parse_chaos_spec("abort@parse:dir:file.bench");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->match, "dir:file.bench");
}

TEST(Chaos, RejectsMalformedSpecs) {
  EXPECT_FALSE(parse_chaos_spec("").has_value());
  EXPECT_FALSE(parse_chaos_spec("abort").has_value());      // no stage
  EXPECT_FALSE(parse_chaos_spec("abort@").has_value());     // empty stage
  EXPECT_FALSE(parse_chaos_spec("@identify").has_value());  // empty mode
  EXPECT_FALSE(parse_chaos_spec("explode@identify").has_value());
  EXPECT_FALSE(parse_chaos_spec("abort@identify@lift").has_value());
}

TEST(Chaos, MatchesOnStageAndScopeSubstring) {
  const ChaosSpec spec = *parse_chaos_spec("abort@identify:b04");
  EXPECT_TRUE(chaos_matches(spec, "identify", "b04s"));
  EXPECT_TRUE(chaos_matches(spec, "identify", "path/to/b04s.bench"));
  EXPECT_FALSE(chaos_matches(spec, "identify", "b03s"));  // scope mismatch
  EXPECT_FALSE(chaos_matches(spec, "lift", "b04s"));      // stage mismatch
}

TEST(Chaos, EmptyMatchFiresForEveryScope) {
  const ChaosSpec spec = *parse_chaos_spec("abort@lift");
  EXPECT_TRUE(chaos_matches(spec, "lift", ""));
  EXPECT_TRUE(chaos_matches(spec, "lift", "anything"));
}

TEST(Chaos, ScopeNestsAndRestores) {
  EXPECT_EQ(chaos_scope(), "");
  {
    ChaosScope outer("b03s");
    EXPECT_EQ(chaos_scope(), "b03s");
    {
      ChaosScope inner("b04s");
      EXPECT_EQ(chaos_scope(), "b04s");
    }
    EXPECT_EQ(chaos_scope(), "b03s");
  }
  EXPECT_EQ(chaos_scope(), "");
}

TEST(Chaos, CheckpointIsANoOpWithoutTheEnvVar) {
  ::unsetenv("NETREV_CHAOS");
  chaos_point("identify");  // must simply return
}

TEST(Chaos, CheckpointIgnoresNonMatchingAndMalformedSpecs) {
  ::setenv("NETREV_CHAOS", "abort@identify:no-such-design", 1);
  ChaosScope scope("b03s");
  chaos_point("identify");  // scope does not match -> no-op

  ::setenv("NETREV_CHAOS", "not a spec at all", 1);
  chaos_point("identify");  // malformed -> no-op, never a crash

  ::unsetenv("NETREV_CHAOS");
}

}  // namespace
}  // namespace netrev::exec
