#include "exec/cancel.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "exec/degrade.h"

namespace netrev::exec {
namespace {

using namespace std::chrono_literals;

TEST(CancelToken, CopiesShareTheSameFlag) {
  CancelToken a;
  CancelToken b = a;
  EXPECT_FALSE(b.cancel_requested());
  a.request_cancel();
  EXPECT_TRUE(a.cancel_requested());
  EXPECT_TRUE(b.cancel_requested());
}

TEST(CancelToken, RawFlagStoreIsVisibleThroughTheToken) {
  // The CLI's SIGINT handler stores through flag() directly; the poll side
  // must observe it like a normal request_cancel().
  CancelToken token;
  token.flag()->store(true, std::memory_order_relaxed);
  EXPECT_TRUE(token.cancel_requested());
}

TEST(Deadline, DefaultAndNonPositiveBudgetsAreUnlimited) {
  EXPECT_FALSE(Deadline().limited());
  EXPECT_FALSE(Deadline().expired());
  EXPECT_FALSE(Deadline::after(0ms).limited());
  EXPECT_FALSE(Deadline::after(-5ms).limited());
  EXPECT_FALSE(Deadline::after(0ms).expired());
}

TEST(Deadline, PositiveBudgetExpiresAfterItElapses) {
  const Deadline d = Deadline::after(1ms);
  EXPECT_TRUE(d.limited());
  std::this_thread::sleep_for(5ms);
  EXPECT_TRUE(d.expired());
}

TEST(Deadline, GenerousBudgetIsNotExpiredImmediately) {
  EXPECT_FALSE(Deadline::after(std::chrono::milliseconds(60'000)).expired());
}

TEST(Deadline, SoonerPrefersTheLimitedAndEarlierDeadline) {
  const Deadline unlimited;
  const Deadline near = Deadline::after(1ms);
  const Deadline far = Deadline::after(std::chrono::milliseconds(60'000));
  EXPECT_FALSE(Deadline::sooner(unlimited, unlimited).limited());
  EXPECT_TRUE(Deadline::sooner(unlimited, near).limited());
  EXPECT_TRUE(Deadline::sooner(near, unlimited).limited());
  std::this_thread::sleep_for(5ms);
  // near has passed; the sooner of {near, far} must be the expired one.
  EXPECT_TRUE(Deadline::sooner(near, far).expired());
  EXPECT_TRUE(Deadline::sooner(far, near).expired());
}

TEST(Checkpoint, DefaultIsUnarmedAndNeverStops) {
  const Checkpoint checkpoint;
  EXPECT_FALSE(checkpoint.armed());
  EXPECT_EQ(checkpoint.stop_requested(), StopReason::kNone);
  EXPECT_NO_THROW(checkpoint.poll());
}

TEST(Checkpoint, ArmedButIdleDoesNotStop) {
  const Checkpoint checkpoint(CancelToken{}, Deadline{});
  EXPECT_TRUE(checkpoint.armed());
  EXPECT_EQ(checkpoint.stop_requested(), StopReason::kNone);
  EXPECT_NO_THROW(checkpoint.poll());
}

TEST(Checkpoint, CancelledTokenThrowsCancelledError) {
  CancelToken token;
  const Checkpoint checkpoint(token, Deadline{});
  token.request_cancel();
  EXPECT_EQ(checkpoint.stop_requested(), StopReason::kCancelled);
  EXPECT_THROW(checkpoint.poll(), CancelledError);
}

TEST(Checkpoint, ExpiredDeadlineThrowsDeadlineExceededError) {
  const Checkpoint checkpoint(CancelToken{}, Deadline::after(1ms));
  std::this_thread::sleep_for(5ms);
  EXPECT_EQ(checkpoint.stop_requested(), StopReason::kDeadline);
  EXPECT_THROW(checkpoint.poll(), DeadlineExceededError);
}

TEST(Checkpoint, CancellationOutranksTheDeadline) {
  // A SIGINT during an already-over-deadline stage must still be reported
  // as cancellation: cancelled runs are abandoned, never degraded.
  CancelToken token;
  const Checkpoint checkpoint(token, Deadline::after(1ms));
  std::this_thread::sleep_for(5ms);
  token.request_cancel();
  EXPECT_EQ(checkpoint.stop_requested(), StopReason::kCancelled);
}

TEST(Checkpoint, ErrorMessagesAreByteStable) {
  // Degrade reasons and journal lines embed these messages verbatim; any
  // wall-clock data in them would break batch byte-stability.
  EXPECT_STREQ(CancelledError().what(), "operation cancelled");
  EXPECT_STREQ(DeadlineExceededError().what(), "deadline exceeded");
}

TEST(DegradeLevel, NamesAreStable) {
  EXPECT_STREQ(degrade_level_name(DegradeLevel::kFull), "full");
  EXPECT_STREQ(degrade_level_name(DegradeLevel::kReducedDepth), "depth");
  EXPECT_STREQ(degrade_level_name(DegradeLevel::kBaseline), "baseline");
  EXPECT_STREQ(degrade_level_name(DegradeLevel::kGroupsOnly), "groups");
}

TEST(DegradePolicy, ParseCoversEveryFlagValue) {
  const auto off = parse_degrade_policy("off");
  ASSERT_TRUE(off.has_value());
  EXPECT_FALSE(off->enabled);

  const struct {
    const char* name;
    DegradeLevel floor;
  } cases[] = {
      {"full", DegradeLevel::kFull},
      {"depth", DegradeLevel::kReducedDepth},
      {"baseline", DegradeLevel::kBaseline},
      {"groups", DegradeLevel::kGroupsOnly},
  };
  for (const auto& c : cases) {
    SCOPED_TRACE(c.name);
    const auto policy = parse_degrade_policy(c.name);
    ASSERT_TRUE(policy.has_value());
    EXPECT_TRUE(policy->enabled);
    EXPECT_EQ(policy->floor, c.floor);
  }

  EXPECT_FALSE(parse_degrade_policy("").has_value());
  EXPECT_FALSE(parse_degrade_policy("fast").has_value());
  EXPECT_FALSE(parse_degrade_policy("Groups").has_value());
}

TEST(DegradePolicy, AllowsRespectsFloorAndEnabled) {
  DegradePolicy policy;  // enabled, floor = groups
  EXPECT_TRUE(policy.allows(DegradeLevel::kFull));
  EXPECT_TRUE(policy.allows(DegradeLevel::kGroupsOnly));

  policy.floor = DegradeLevel::kBaseline;
  EXPECT_TRUE(policy.allows(DegradeLevel::kBaseline));
  EXPECT_FALSE(policy.allows(DegradeLevel::kGroupsOnly));

  policy.enabled = false;
  EXPECT_FALSE(policy.allows(DegradeLevel::kFull));
}

}  // namespace
}  // namespace netrev::exec
