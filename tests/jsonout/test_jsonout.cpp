// Golden-file pins for the shared JSON emission policy and every top-level
// output surface's version stamp.  These tests pin exact BYTES on purpose:
// the schema_version contract says the stamp is the first field of every
// document, and a drift here is a breaking interchange change.
#include "jsonout/jsonout.h"

#include <gtest/gtest.h>

#include "common/diagnostics.h"
#include "eval/report.h"
#include "eval/table.h"
#include "itc/family.h"
#include "pipeline/batch.h"
#include "pipeline/session.h"
#include "wordrec/identify.h"

namespace netrev::jsonout {
namespace {

TEST(Jsonout, VersionFieldIsStable) {
  EXPECT_EQ(kSchemaVersion, 1);
  EXPECT_EQ(version_field(), "\"schema_version\":1");
}

TEST(Jsonout, EscapeHandlesSpecialsAndControlBytes) {
  EXPECT_EQ(escape("plain"), "plain");
  EXPECT_EQ(escape("a\"b"), "a\\\"b");
  EXPECT_EQ(escape("a\\b"), "a\\\\b");
  EXPECT_EQ(escape("a\nb"), "a\\nb");
  EXPECT_EQ(escape("a\rb"), "a\\rb");
  EXPECT_EQ(escape("a\tb"), "a\\tb");
  EXPECT_EQ(escape(std::string("a\x01") + "b"), "a\\u0001b");
  EXPECT_EQ(escape(std::string("a\x1f") + "b"), "a\\u001fb");
}

TEST(Jsonout, QuoteWrapsEscaped) {
  EXPECT_EQ(quote("n\"1"), "\"n\\\"1\"");
}

TEST(Jsonout, DocumentPrependsVersionStamp) {
  EXPECT_EQ(document(""), "{\"schema_version\":1}");
  EXPECT_EQ(document("\"a\":1"), "{\"schema_version\":1,\"a\":1}");
}

// --- per-surface stamps ------------------------------------------------------
// Each surface's document must START with the version stamp, not merely
// contain it somewhere.

bool stamped(const std::string& json) {
  return json.rfind("{\"schema_version\":1,", 0) == 0;
}

TEST(SurfaceStamp, Diagnostics) {
  diag::Diagnostics diags;
  diags.warning("w");
  EXPECT_TRUE(stamped(diags.to_json())) << diags.to_json().substr(0, 60);
}

TEST(SurfaceStamp, IdentifyAndWords) {
  const auto bench = itc::build_benchmark("b03s");
  const auto result = wordrec::identify_words(bench.netlist);
  EXPECT_TRUE(stamped(eval::identify_result_to_json(bench.netlist, result)));
  EXPECT_TRUE(stamped(eval::words_to_json(bench.netlist, result.words)));
}

TEST(SurfaceStamp, EvaluateDocComposition) {
  const std::string doc = eval::evaluate_doc_to_json("{\"x\":1}", "{\"y\":2}");
  EXPECT_EQ(doc,
            "{\"schema_version\":1,\"evaluation\":{\"x\":1},"
            "\"analysis\":{\"y\":2}}");
}

TEST(SurfaceStamp, TableRows) {
  eval::Table1Row row;
  row.benchmark = "b03s";
  const std::string json = eval::table_to_json({&row, 1});
  EXPECT_TRUE(stamped(json)) << json.substr(0, 60);
  EXPECT_NE(json.find("\"rows\":[{"), std::string::npos);
}

TEST(SurfaceStamp, BatchResult) {
  pipeline::BatchOptions options;
  options.run_lint = false;
  options.run_lift = false;
  options.run_evaluate = false;
  const auto result = pipeline::run_batch({"b03s"}, options);
  EXPECT_TRUE(stamped(result.to_json())) << result.to_json().substr(0, 60);
}

TEST(SurfaceStamp, LiftDocument) {
  Session session;
  const LoadedDesign design = session.load_netlist("b03s");
  const std::string json = session.lift_json(design);
  EXPECT_TRUE(stamped(json)) << json.substr(0, 60);
}

}  // namespace
}  // namespace netrev::jsonout
