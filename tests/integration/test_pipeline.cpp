// End-to-end pipeline checks on the synthetic family: Ours must dominate
// Base on every §3 metric (the paper's "never performs worse" claims), and
// the recovered control-signal counts must match the embedded ground truth.
#include <gtest/gtest.h>

#include <map>

#include "eval/metrics.h"
#include "eval/reference.h"
#include "eval/runner.h"
#include "itc/family.h"

namespace netrev {
namespace {

struct PipelineResult {
  itc::GeneratedBenchmark bench;
  eval::TechniqueRun base;
  eval::TechniqueRun ours;
  eval::EvaluationSummary base_summary;
  eval::EvaluationSummary ours_summary;
};

const PipelineResult& run(const std::string& name) {
  static std::map<std::string, PipelineResult> cache;
  auto it = cache.find(name);
  if (it == cache.end()) {
    PipelineResult result;
    result.bench = itc::build_benchmark(name);
    const auto reference = eval::extract_reference_words(result.bench.netlist);
    result.base = eval::run_baseline(result.bench.netlist);
    result.ours = eval::run_ours(result.bench.netlist);
    result.base_summary = evaluate_words(result.base.words, reference.words);
    result.ours_summary = evaluate_words(result.ours.words, reference.words);
    it = cache.emplace(name, std::move(result)).first;
  }
  return it->second;
}

class PipelineTest : public ::testing::TestWithParam<const char*> {};

TEST_P(PipelineTest, OursNeverFindsFewerFullWords) {
  const auto& r = run(GetParam());
  EXPECT_GE(r.ours_summary.fully_found, r.base_summary.fully_found);
}

TEST_P(PipelineTest, OursNeverLeavesMoreWordsNotFound) {
  const auto& r = run(GetParam());
  EXPECT_LE(r.ours_summary.not_found, r.base_summary.not_found);
}

TEST_P(PipelineTest, OursFragmentationNoWorseOnSharedPartials) {
  // The paper's aggregate fragmentation claim; compare only when both have
  // partials (composition effects are legitimate, see b15 discussion).
  const auto& r = run(GetParam());
  if (r.ours_summary.partially_found == r.base_summary.partially_found &&
      r.ours_summary.partially_found > 0) {
    EXPECT_LE(r.ours_summary.avg_fragmentation,
              r.base_summary.avg_fragmentation + 1e-9);
  }
}

TEST_P(PipelineTest, ControlSignalsMatchEmbeddedGroundTruth) {
  const auto& r = run(GetParam());
  EXPECT_EQ(r.ours.control_signals,
            r.bench.profile.expected_control_signals());
}

TEST_P(PipelineTest, BaselineUsesNoControlSignals) {
  const auto& r = run(GetParam());
  EXPECT_EQ(r.base.control_signals, 0u);
}

TEST_P(PipelineTest, EveryReferenceBitAppearsInSomeGeneratedWord) {
  const auto& r = run(GetParam());
  const auto reference = eval::extract_reference_words(r.bench.netlist);
  const auto index = r.ours.words.index_of_net();
  for (const auto& word : reference.words)
    for (netlist::NetId bit : word.bits)
      EXPECT_TRUE(index.contains(bit)) << word.register_name;
}

INSTANTIATE_TEST_SUITE_P(Family, PipelineTest,
                         ::testing::Values("b03s", "b04s", "b05s", "b07s",
                                           "b08s", "b11s", "b12s", "b13s",
                                           "b14s", "b15s"));

}  // namespace
}  // namespace netrev
