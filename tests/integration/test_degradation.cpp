// The graceful-degradation ladder end to end: resource trips produce a
// degraded-but-deterministic answer instead of a failure, disabled policies
// propagate the trip, and an armed-but-unhit deadline changes nothing —
// byte for byte.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "cli/cli.h"
#include "common/resource_guard.h"
#include "common/thread_pool.h"
#include "eval/report.h"
#include "exec/degrade.h"
#include "itc/family.h"
#include "netlist/netlist.h"
#include "pipeline/batch.h"
#include "wordrec/degrade.h"
#include "wordrec/identify.h"

namespace netrev {
namespace {

struct CliRun {
  int exit_code;
  std::string out;
  std::string err;
};

CliRun run(const std::vector<std::string>& args) {
  std::ostringstream out, err;
  const int exit_code = cli::run_cli(args, out, err);
  return {exit_code, out.str(), err.str()};
}

// A cone-work budget small enough that the full technique (and every rung
// that walks cones) trips on this design.  Budget trips are deterministic —
// they count work units, not wall-clock time.
wordrec::Options tripping_options() {
  wordrec::Options options;
  options.max_cone_work = 100;  // full identification of b08s charges ~274
  return options;
}

TEST(Degradation, BudgetTripFallsDownTheLadderInsteadOfFailing) {
  const netlist::Netlist nl = itc::build_benchmark("b08s").netlist;
  EXPECT_THROW((void)wordrec::identify_words(nl, tripping_options()),
               ResourceLimitError);

  const wordrec::IdentifyResult result = wordrec::identify_words_degradable(
      nl, tripping_options(), exec::DegradePolicy{});
  EXPECT_TRUE(result.degraded());
  EXPECT_NE(result.degrade_level, exec::DegradeLevel::kFull);
  EXPECT_EQ(result.degrade_stage, "full") << "first tripped rung";
  // The trip reason embeds the configured limit, never the racy spent count,
  // so it is byte-stable at any job count.
  EXPECT_EQ(result.degrade_reason,
            "cone traversal work limit exceeded (100 nodes)");
  // The floor rung always answers with the potential-bit groups.
  EXPECT_GT(result.words.words.size(), 0u);
}

TEST(Degradation, DegradedResultIsDeterministicAcrossRunsAndJobCounts) {
  const netlist::Netlist nl = itc::build_benchmark("b08s").netlist;
  const auto render = [&] {
    return eval::identify_result_to_json(
        nl, wordrec::identify_words_degradable(nl, tripping_options(),
                                               exec::DegradePolicy{}));
  };
  ThreadPool::set_global_jobs(1);
  const std::string serial = render();
  EXPECT_EQ(serial, render());
  ThreadPool::set_global_jobs(4);
  const std::string parallel = render();
  ThreadPool::set_global_jobs(0);
  EXPECT_EQ(serial, parallel);
  EXPECT_NE(serial.find("\"degraded\":{"), std::string::npos);
}

TEST(Degradation, DisabledPolicyPropagatesTheTrip) {
  const netlist::Netlist nl = itc::build_benchmark("b08s").netlist;
  exec::DegradePolicy off;
  off.enabled = false;
  EXPECT_THROW(
      (void)wordrec::identify_words_degradable(nl, tripping_options(), off),
      ResourceLimitError);
}

TEST(Degradation, FloorFullPropagatesTheTrip) {
  const netlist::Netlist nl = itc::build_benchmark("b08s").netlist;
  exec::DegradePolicy full_only;
  full_only.floor = exec::DegradeLevel::kFull;
  EXPECT_THROW((void)wordrec::identify_words_degradable(
                   nl, tripping_options(), full_only),
               ResourceLimitError);
}

TEST(Degradation, ReportDegradationEmitsOneWarningOnlyWhenDegraded) {
  const netlist::Netlist nl = itc::build_benchmark("b03s").netlist;
  diag::Diagnostics diags;
  wordrec::report_degradation(wordrec::identify_words(nl), diags);
  EXPECT_TRUE(diags.empty());

  const netlist::Netlist big = itc::build_benchmark("b08s").netlist;
  const wordrec::IdentifyResult degraded = wordrec::identify_words_degradable(
      big, tripping_options(), exec::DegradePolicy{});
  wordrec::report_degradation(degraded, diags);
  EXPECT_EQ(diags.warning_count(), 1u);
}

TEST(Degradation, DegradedBatchIsByteStableAndWarm) {
  pipeline::BatchOptions options;
  options.config.wordrec.max_cone_work = 100;
  pipeline::ArtifactCache cache;
  options.cache = &cache;
  const pipeline::BatchResult cold =
      pipeline::run_batch({"b03s", "b08s"}, options);
  EXPECT_TRUE(cold.all_ok()) << cold.render_text();
  const pipeline::BatchResult warm =
      pipeline::run_batch({"b03s", "b08s"}, options);
  EXPECT_EQ(cold.to_json(), warm.to_json());
  EXPECT_EQ(warm.cache_misses, 0u);
  EXPECT_NE(cold.to_json().find("\"degraded\":{\"level\":"),
            std::string::npos);
}

// --- CLI-level contracts ---------------------------------------------------

TEST(DegradationCli, UnderDeadlineRunEqualsNoDeadlineRunByteForByte) {
  const CliRun plain = run({"identify", "b03s", "--json"});
  const CliRun timed =
      run({"identify", "b03s", "--json", "--timeout", "60000"});
  ASSERT_EQ(plain.exit_code, 0);
  ASSERT_EQ(timed.exit_code, 0);
  EXPECT_EQ(plain.out, timed.out);
  // The degradation record is always present so its absence is expressible.
  EXPECT_NE(plain.out.find("\"degraded\":null"), std::string::npos);
}

TEST(DegradationCli, ExpiredDeadlineDegradesToGroupsWithExitZero) {
  // The 1 ms whole-run deadline is long past by the first identify poll on
  // b12s, and the groups rung never polls, so this is stable despite being
  // wall-clock driven.
  const CliRun degraded =
      run({"identify", "b12s", "--json", "--timeout", "1"});
  EXPECT_EQ(degraded.exit_code, 0) << degraded.err;
  EXPECT_NE(degraded.out.find("\"degraded\":{\"level\":\"groups\""),
            std::string::npos)
      << degraded.out.substr(0, 200);
}

TEST(DegradationCli, DegradeOffTurnsTheTripIntoExitFive) {
  const CliRun strict =
      run({"identify", "b12s", "--degrade", "off", "--timeout", "1"});
  EXPECT_EQ(strict.exit_code, 5);
  EXPECT_NE(strict.err.find("deadline exceeded"), std::string::npos);
}

TEST(DegradationCli, BatchDegradedEntriesStillExitZeroUnderKeepGoing) {
  // The acceptance scenario: a pathological stage budget yields a degraded
  // entry — not a failed one — and the batch exits 0.
  const CliRun result =
      run({"batch", "b12s", "--timeout", "1", "--keep-going", "--json"});
  EXPECT_EQ(result.exit_code, 0) << result.err;
  EXPECT_NE(result.out.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(result.out.find("\"degraded\":{\"level\":\"groups\""),
            std::string::npos)
      << result.out.substr(0, 400);
}

TEST(DegradationCli, DegradeFlagRejectsUnknownNames) {
  const CliRun bad = run({"identify", "b03s", "--degrade", "fast"});
  EXPECT_EQ(bad.exit_code, 2);
  EXPECT_NE(bad.err.find("--degrade expects"), std::string::npos);
}

TEST(DegradationCli, TextModeAnnouncesTheDegradedLevel) {
  const CliRun degraded = run({"identify", "b12s", "--timeout", "1"});
  EXPECT_EQ(degraded.exit_code, 0);
  EXPECT_NE(degraded.out.find("note: degraded to 'groups'"),
            std::string::npos);
}

}  // namespace
}  // namespace netrev
