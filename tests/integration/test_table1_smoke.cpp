// Regression of the reproduced Table 1 against the paper's cells.
//
// For the small/medium benchmarks the reproduction lands exactly on the
// paper's percentages (the calibration fixes the word-outcome mix and the
// real algorithms recover it); these tests pin those values so an algorithm
// regression is caught as a Table 1 deviation.  Runtime columns are not
// pinned (hardware-dependent); fragmentation is pinned loosely.
#include <gtest/gtest.h>

#include <map>

#include "eval/reference.h"
#include "eval/runner.h"
#include "eval/table.h"
#include "itc/family.h"

namespace netrev {
namespace {

struct Expected {
  double base_full, ours_full;
  double base_nf, ours_nf;
  std::size_t ours_controls;
};

const eval::Table1Row& row_for(const std::string& name) {
  static std::map<std::string, eval::Table1Row> cache;
  auto it = cache.find(name);
  if (it == cache.end()) {
    const auto bench = itc::build_benchmark(name);
    const auto reference = eval::extract_reference_words(bench.netlist);
    const auto base = eval::run_baseline(bench.netlist);
    const auto ours = eval::run_ours(bench.netlist);
    it = cache.emplace(name, make_row(name, bench.netlist, reference, base, ours))
             .first;
  }
  return it->second;
}

class Table1Smoke
    : public ::testing::TestWithParam<std::pair<const char*, Expected>> {};

TEST_P(Table1Smoke, MatchesPaperCells) {
  const auto& [name, expected] = GetParam();
  const eval::Table1Row& row = row_for(name);
  EXPECT_NEAR(row.base.full_pct, expected.base_full, 0.1) << name;
  EXPECT_NEAR(row.ours.full_pct, expected.ours_full, 0.1) << name;
  EXPECT_NEAR(row.base.not_found_pct, expected.base_nf, 0.1) << name;
  EXPECT_NEAR(row.ours.not_found_pct, expected.ours_nf, 0.1) << name;
  EXPECT_EQ(row.ours.control_signals, expected.ours_controls) << name;
  EXPECT_EQ(row.base.control_signals, 0u) << name;
}

// Paper Table 1 cells (percentages rounded as printed there).
INSTANTIATE_TEST_SUITE_P(
    PaperCells, Table1Smoke,
    ::testing::Values(
        std::pair<const char*, Expected>{"b03s", {71.4, 85.7, 14.3, 14.3, 1}},
        std::pair<const char*, Expected>{"b04s", {77.8, 88.9, 11.1, 11.1, 1}},
        std::pair<const char*, Expected>{"b05s", {80.0, 80.0, 20.0, 20.0, 0}},
        std::pair<const char*, Expected>{"b07s", {57.1, 57.1, 14.3, 14.3, 1}},
        std::pair<const char*, Expected>{"b08s", {40.0, 80.0, 20.0, 20.0, 3}},
        std::pair<const char*, Expected>{"b11s", {60.0, 60.0, 0.0, 0.0, 0}},
        std::pair<const char*, Expected>{"b12s", {82.6, 91.3, 8.7, 4.3, 7}},
        std::pair<const char*, Expected>{"b13s", {28.6, 42.9, 28.6, 14.3, 2}},
        std::pair<const char*, Expected>{"b14s", {50.0, 62.5, 0.0, 0.0, 4}},
        std::pair<const char*, Expected>{"b15s", {68.8, 81.2, 6.2, 0.0, 4}}));

TEST(Table1Smoke, FragmentationDirectionHolds) {
  // Aggregate over the small benchmarks: Ours' average fragmentation must
  // be clearly below Base's (paper: 0.213 vs 0.381).
  double base_total = 0.0, ours_total = 0.0;
  const char* names[] = {"b03s", "b04s", "b08s", "b12s", "b13s"};
  for (const char* name : names) {
    base_total += row_for(name).base.fragmentation;
    ours_total += row_for(name).ours.fragmentation;
  }
  EXPECT_LT(ours_total, base_total);
}

TEST(Table1Smoke, B15sReproducesCompositionArtifact) {
  // Paper b15: Ours improves full-found and not-found, yet its partial-word
  // fragmentation is slightly HIGHER (0.24 vs 0.19) because the low-
  // fragmentation words left the partial pool.  The reproduction shows the
  // same artifact.
  const auto& row = row_for("b15s");
  EXPECT_GT(row.ours.full_pct, row.base.full_pct);
  EXPECT_LT(row.ours.not_found_pct, row.base.not_found_pct);
  EXPECT_GT(row.ours.fragmentation, row.base.fragmentation);
}

}  // namespace
}  // namespace netrev
