// Fault-injection harness: seeded corruptions of family benchmarks pushed
// through the full permissive pipeline (parse -> repair -> validate ->
// identify).  The contract under test is robustness, not output quality:
// no crash or uncaught exception, diagnostics stay bounded, and single-line
// damage costs at most a sliver of the design.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/dataflow.h"
#include "analysis/domains.h"
#include "common/diagnostics.h"
#include "common/resource_guard.h"
#include "exec/cancel.h"
#include "exec/degrade.h"
#include "itc/family.h"
#include "netlist/netlist.h"
#include "netlist/repair.h"
#include "netlist/validate.h"
#include "parser/bench_parser.h"
#include "parser/parse_options.h"
#include "parser/verilog_parser.h"
#include "parser/verilog_writer.h"
#include "pipeline/batch.h"
#include "support/corrupt.h"
#include "wordrec/degrade.h"
#include "wordrec/identify.h"

namespace netrev {
namespace {

using netlist::Netlist;
using testing::CorruptionKind;
using testing::kAllCorruptionKinds;

constexpr std::uint64_t kSeedsPerCase = 10;
const char* const kBenchmarks[] = {"b03s", "b08s", "b13s"};

enum class Format { kBench, kVerilog };

struct PipelineOutcome {
  std::size_t parsed_gates = 0;
  std::size_t diagnostics = 0;
  bool usable = false;
  bool identified = false;
};

// Runs one corrupted source through the permissive pipeline.  Returns the
// outcome; throws only on bugs (anything except the documented
// ResourceLimitError escape hatch fails the calling test).
PipelineOutcome run_pipeline(const std::string& source, Format format,
                             const std::string& label) {
  PipelineOutcome outcome;
  diag::Diagnostics diags;
  parser::ParseOptions options;
  options.permissive = true;
  options.filename = label;

  Netlist parsed = format == Format::kBench
                       ? parser::parse_bench(source, options, diags)
                       : parser::parse_verilog(source, options, diags);
  outcome.parsed_gates = parsed.gate_count();

  netlist::RepairResult repaired = netlist::repair(parsed, diags);
  // Mirror the CLI's permissive path: repair cannot fix combinational
  // cycles, and identify's structural pre-pass rejects them.
  analysis::CycleBreakResult decycled =
      analysis::break_combinational_cycles(repaired.netlist, diags);
  if (decycled.cycles_broken > 0)
    repaired.netlist = std::move(decycled.netlist);
  const netlist::ValidationReport report = netlist::validate(repaired.netlist);
  outcome.usable = diags.usable() && report.ok();
  outcome.diagnostics = diags.entries().size();

  if (outcome.usable && repaired.netlist.gate_count() > 0) {
    wordrec::Options wopts;
    // Guard rail, generous for these small designs: a mutation that sends
    // identification into runaway cone walks must abort cleanly.
    wopts.max_cone_work = 5'000'000;
    try {
      (void)wordrec::identify_words(repaired.netlist, wopts);
      outcome.identified = true;
    } catch (const ResourceLimitError&) {
      // Graceful, documented abort — counts as survival, not identification.
    }
  }
  return outcome;
}

std::string source_for(const Netlist& nl, Format format) {
  return format == Format::kBench ? parser::write_bench(nl)
                                  : parser::write_verilog(nl);
}

TEST(FaultInjection, PipelineSurvivesSeededCorruptions) {
  std::size_t mutations = 0;
  std::size_t identified = 0;
  std::size_t single_line_cases = 0;
  std::size_t original_gate_total = 0;
  std::size_t recovered_gate_total = 0;

  for (const char* benchmark : kBenchmarks) {
    const Netlist golden = itc::build_benchmark(benchmark).netlist;
    for (const Format format : {Format::kBench, Format::kVerilog}) {
      const std::string source = source_for(golden, format);
      for (const CorruptionKind kind : kAllCorruptionKinds) {
        for (std::uint64_t seed = 0; seed < kSeedsPerCase; ++seed) {
          const std::string label =
              std::string(benchmark) +
              (format == Format::kBench ? ".bench" : ".v") + ":" +
              testing::corruption_name(kind) + ":" + std::to_string(seed);
          SCOPED_TRACE(label);

          const std::string corrupted = testing::corrupt(source, kind, seed);
          const PipelineOutcome outcome =
              run_pipeline(corrupted, format, label);
          ++mutations;
          if (outcome.identified) ++identified;

          // Diagnostics must stay bounded no matter the damage.
          EXPECT_LE(outcome.diagnostics, diag::Diagnostics::kDefaultMaxTotal);

          if (testing::single_line_corruption(kind)) {
            ++single_line_cases;
            original_gate_total += golden.gate_count();
            recovered_gate_total += outcome.parsed_gates;
            // One damaged line can never erase a large slice of the design.
            EXPECT_GE(outcome.parsed_gates, golden.gate_count() / 2);
          }
        }
      }
    }
  }

  EXPECT_GE(mutations, 300u);
  ASSERT_GT(single_line_cases, 0u);
  // Across all single-line corruptions, permissive parsing must recover at
  // least 90% of the gates (acceptance bar; in practice it is far higher).
  EXPECT_GE(recovered_gate_total * 10, original_gate_total * 9)
      << "recovered " << recovered_gate_total << " of " << original_gate_total
      << " gates across " << single_line_cases << " single-line corruptions";
  // The pipeline should not merely survive: most mutations stay usable all
  // the way through identification.
  EXPECT_GE(identified * 2, mutations)
      << identified << " of " << mutations << " mutations reached identify";
}

TEST(FaultInjection, LintFlagsEveryNetlistRepairHadToTouch) {
  // Coverage contract for the static-analysis engine: whenever repair() had
  // to change a recovered netlist (tie a dangling net, prune floating logic),
  // linting the PRE-repair netlist with the parse diagnostics must surface at
  // least one finding — repair never fixes a defect lint cannot see.
  std::size_t repaired_cases = 0;
  for (const char* benchmark : kBenchmarks) {
    const Netlist golden = itc::build_benchmark(benchmark).netlist;
    for (const Format format : {Format::kBench, Format::kVerilog}) {
      const std::string source = source_for(golden, format);
      for (const CorruptionKind kind : kAllCorruptionKinds) {
        for (std::uint64_t seed = 0; seed < kSeedsPerCase; ++seed) {
          const std::string label =
              std::string(benchmark) +
              (format == Format::kBench ? ".bench" : ".v") + ":" +
              testing::corruption_name(kind) + ":" + std::to_string(seed);
          SCOPED_TRACE(label);

          diag::Diagnostics diags;
          parser::ParseOptions options;
          options.permissive = true;
          options.filename = label;
          const std::string corrupted = testing::corrupt(source, kind, seed);
          const Netlist parsed =
              format == Format::kBench
                  ? parser::parse_bench(corrupted, options, diags)
                  : parser::parse_verilog(corrupted, options, diags);

          diag::Diagnostics repair_diags;
          const netlist::RepairResult repaired =
              netlist::repair(parsed, repair_diags);
          if (!repaired.stats.changed()) continue;
          ++repaired_cases;

          const analysis::AnalysisResult lint =
              analysis::analyze(parsed, {}, &diags);
          EXPECT_FALSE(lint.findings.empty())
              << "repair changed the netlist (" << repaired.stats.dangling_tied
              << " tied, " << repaired.stats.floating_pruned
              << " pruned) but lint saw nothing";
        }
      }
    }
  }
  // The sweep must actually exercise the contract.
  EXPECT_GE(repaired_cases, 50u);
}

TEST(FaultInjection, DataflowAndDomainsSurviveSeededCorruptions) {
  // Robustness contract for the new analysis layers: every seeded mutation,
  // taken through the same permissive front end lint uses (parse -> repair ->
  // cycle break), must flow through the ternary dataflow engine, the domain
  // inference, and the full 12-rule analyze() without a crash, hang, or
  // uncaught exception.  Output quality is not asserted — termination and
  // bounded findings are.
  std::size_t mutations = 0;
  for (const char* benchmark : kBenchmarks) {
    const Netlist golden = itc::build_benchmark(benchmark).netlist;
    for (const Format format : {Format::kBench, Format::kVerilog}) {
      const std::string source = source_for(golden, format);
      for (const CorruptionKind kind : kAllCorruptionKinds) {
        for (std::uint64_t seed = 0; seed < kSeedsPerCase; ++seed) {
          const std::string label =
              std::string(benchmark) +
              (format == Format::kBench ? ".bench" : ".v") + ":" +
              testing::corruption_name(kind) + ":" + std::to_string(seed);
          SCOPED_TRACE(label);

          diag::Diagnostics diags;
          parser::ParseOptions options;
          options.permissive = true;
          options.filename = label;
          const std::string corrupted = testing::corrupt(source, kind, seed);
          const Netlist parsed =
              format == Format::kBench
                  ? parser::parse_bench(corrupted, options, diags)
                  : parser::parse_verilog(corrupted, options, diags);
          netlist::RepairResult repaired = netlist::repair(parsed, diags);
          analysis::CycleBreakResult decycled =
              analysis::break_combinational_cycles(repaired.netlist, diags);
          if (decycled.cycles_broken > 0)
            repaired.netlist = std::move(decycled.netlist);
          ++mutations;

          EXPECT_NO_THROW({
            const analysis::DataflowFacts facts =
                analysis::run_dataflow(repaired.netlist);
            ASSERT_EQ(facts.always.size(), repaired.netlist.net_count());
            const analysis::DomainAnalysis domains =
                analysis::analyze_domains(repaired.netlist);
            std::size_t grouped = 0;
            for (const analysis::DomainGroup& group : domains.groups)
              grouped += group.flops.size();
            EXPECT_EQ(grouped, domains.flops.size());
            const analysis::AnalysisResult lint =
                analysis::analyze(repaired.netlist, {}, &diags);
            EXPECT_EQ(lint.rules_run, 12u);
          });
        }
      }
    }
  }
  EXPECT_GE(mutations, 300u);
}

TEST(FaultInjection, CorruptionIsDeterministic) {
  const Netlist golden = itc::build_benchmark("b03s").netlist;
  const std::string source = parser::write_bench(golden);
  for (const CorruptionKind kind : kAllCorruptionKinds) {
    SCOPED_TRACE(testing::corruption_name(kind));
    EXPECT_EQ(testing::corrupt(source, kind, 7),
              testing::corrupt(source, kind, 7));
  }
}

TEST(FaultInjection, KindsProduceDistinctDamage) {
  const Netlist golden = itc::build_benchmark("b03s").netlist;
  const std::string source = parser::write_bench(golden);
  for (const CorruptionKind kind : kAllCorruptionKinds) {
    SCOPED_TRACE(testing::corruption_name(kind));
    EXPECT_NE(testing::corrupt(source, kind, 3), source);
  }
}

TEST(FaultInjection, DegradableIdentificationSurvivesAnyBudget) {
  // Sweep the cone-work budget from "trips instantly" to "never trips": at
  // every setting the degradation ladder must answer (never throw), and the
  // answer at a given budget must be reproducible.
  for (const char* benchmark : kBenchmarks) {
    const Netlist golden = itc::build_benchmark(benchmark).netlist;
    for (const std::size_t budget : {std::size_t{1}, std::size_t{64},
                                     std::size_t{4096}, std::size_t{0}}) {
      SCOPED_TRACE(std::string(benchmark) + " budget " +
                   std::to_string(budget));
      wordrec::Options options;
      options.max_cone_work = budget;
      const wordrec::IdentifyResult first =
          wordrec::identify_words_degradable(golden, options,
                                             exec::DegradePolicy{});
      const wordrec::IdentifyResult second =
          wordrec::identify_words_degradable(golden, options,
                                             exec::DegradePolicy{});
      EXPECT_EQ(first.degrade_level, second.degrade_level);
      EXPECT_EQ(first.degrade_reason, second.degrade_reason);
      EXPECT_EQ(first.words.words.size(), second.words.words.size());
      if (budget == 0) {
        EXPECT_FALSE(first.degraded());
      }
    }
  }
}

TEST(FaultInjection, DeadlineTripsDegradeCorruptedInputsToo) {
  // An already-expired stage deadline plus a corrupted netlist: the ladder
  // must still answer via the groups rung (which never polls) — damage and
  // deadlines compose without crashing.
  const Netlist golden = itc::build_benchmark("b03s").netlist;
  const std::string source = parser::write_bench(golden);
  exec::CancelToken token;
  for (const CorruptionKind kind : kAllCorruptionKinds) {
    SCOPED_TRACE(testing::corruption_name(kind));
    diag::Diagnostics diags;
    parser::ParseOptions parse_options;
    parse_options.permissive = true;
    const Netlist parsed =
        parser::parse_bench(testing::corrupt(source, kind, 11), parse_options,
                            diags);
    netlist::RepairResult repaired = netlist::repair(parsed, diags);
    analysis::CycleBreakResult decycled =
        analysis::break_combinational_cycles(repaired.netlist, diags);
    if (decycled.cycles_broken > 0)
      repaired.netlist = std::move(decycled.netlist);
    if (!diags.usable() || !netlist::validate(repaired.netlist).ok()) continue;

    wordrec::Options options;
    options.checkpoint = exec::Checkpoint(
        token, exec::Deadline::after(std::chrono::milliseconds(1)));
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    EXPECT_NO_THROW({
      const wordrec::IdentifyResult result = wordrec::identify_words_degradable(
          repaired.netlist, options, exec::DegradePolicy{});
      (void)result;
    });
  }
}

TEST(FaultInjection, RetriesHealATransientlyMissingBatchInput) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "netrev_transient_test";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string path = (dir / "late.bench").string();
  const std::string contents =
      parser::write_bench(itc::build_benchmark("b03s").netlist);

  // Without retries the not-yet-visible file is a load failure.
  pipeline::BatchOptions no_retry;
  no_retry.keep_going = true;
  const pipeline::BatchResult failed = pipeline::run_batch({path}, no_retry);
  ASSERT_EQ(failed.failed, 1u);
  EXPECT_EQ(failed.entries[0].failed_stage, "load");

  // With retries, a writer that shows up during the backoff window heals the
  // entry: the probe loop spans ~1.2s of doubling backoff, the file lands
  // after ~80ms.
  std::thread writer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    std::ofstream(path) << contents;
  });
  pipeline::BatchOptions with_retry;
  with_retry.keep_going = true;
  with_retry.retries = 6;
  with_retry.retry_backoff = std::chrono::milliseconds(20);
  const pipeline::BatchResult healed =
      pipeline::run_batch({path}, with_retry);
  writer.join();
  EXPECT_TRUE(healed.all_ok()) << healed.render_text();
  fs::remove_all(dir);
}

TEST(FaultInjection, TruncationNeverCrashesAtAnyLength) {
  // Sweep every prefix length of a small design through the permissive
  // parser: byte-level truncation must always yield a netlist + diagnostics.
  const Netlist golden = itc::build_benchmark("b03s").netlist;
  const std::string source = parser::write_bench(golden);
  for (std::size_t len = 0; len <= source.size(); len += 97) {
    diag::Diagnostics diags;
    parser::ParseOptions options;
    options.permissive = true;
    EXPECT_NO_THROW({
      (void)parser::parse_bench(source.substr(0, len), options, diags);
    });
  }
}

}  // namespace
}  // namespace netrev
