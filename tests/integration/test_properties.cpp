// Cross-module property tests on generated benchmarks:
//   1. every assignment the identifier commits to is simulation-sound
//      (its propagation closure holds on every consistent random vector);
//   2. materialized reduced netlists are behaviourally equivalent to the
//      original under the assumption, and validate structurally;
//   3. virtual-reduction hash keys equal keys computed on the materialized
//      reduction (the two views cannot drift);
//   4. identification output is a true partition of the gate outputs.
#include <gtest/gtest.h>

#include <map>
#include <unordered_set>

#include "itc/family.h"
#include "netlist/validate.h"
#include "sim/equivalence.h"
#include "wordrec/hash_key.h"
#include "wordrec/identify.h"
#include "wordrec/reduce.h"

namespace netrev {
namespace {

struct Produced {
  itc::GeneratedBenchmark bench;
  wordrec::IdentifyResult result;
};

const Produced& produced(const std::string& name) {
  static std::map<std::string, Produced> cache;
  auto it = cache.find(name);
  if (it == cache.end()) {
    Produced p;
    p.bench = itc::build_benchmark(name);
    p.result = wordrec::identify_words(p.bench.netlist);
    it = cache.emplace(name, std::move(p)).first;
  }
  return it->second;
}

class PropertyTest : public ::testing::TestWithParam<const char*> {};

TEST_P(PropertyTest, CommittedAssignmentsAreSimulationSound) {
  const auto& p = produced(GetParam());
  ASSERT_FALSE(p.result.unified.empty());
  for (const auto& unified : p.result.unified) {
    const auto prop = wordrec::propagate(p.bench.netlist, unified.assignment);
    ASSERT_TRUE(prop.feasible);
    std::unordered_map<netlist::NetId, bool> implied(
        prop.map.entries().begin(), prop.map.entries().end());
    const auto check = sim::check_implications(
        p.bench.netlist, unified.assignment, implied, 60, 0xC0FFEE);
    EXPECT_EQ(check.violations, 0u);
  }
}

TEST_P(PropertyTest, MaterializedReductionsValidateAndAgreeBehaviourally) {
  const auto& p = produced(GetParam());
  std::size_t checked = 0;
  for (const auto& unified : p.result.unified) {
    if (checked >= 2) break;  // equivalence sims are the expensive part
    ++checked;
    const auto prop = wordrec::propagate(p.bench.netlist, unified.assignment);
    const auto reduced =
        wordrec::materialize_reduction(p.bench.netlist, prop.map);
    const auto report = netlist::validate(reduced);
    EXPECT_TRUE(report.ok()) << report.to_string();
    EXPECT_LT(reduced.gate_count(), p.bench.netlist.gate_count());
    const auto equivalence = sim::check_reduction_equivalence(
        p.bench.netlist, reduced, unified.assignment, 60, 0xFEED);
    EXPECT_EQ(equivalence.mismatches, 0u);
  }
}

TEST_P(PropertyTest, VirtualAndMaterializedKeysAgreeOnWordBits) {
  const auto& p = produced(GetParam());
  const wordrec::Options options;
  const wordrec::ConeHasher virtual_hasher(p.bench.netlist, options);
  for (const auto& unified : p.result.unified) {
    const auto prop = wordrec::propagate(p.bench.netlist, unified.assignment);
    const auto reduced =
        wordrec::materialize_reduction(p.bench.netlist, prop.map);
    const wordrec::ConeHasher reduced_hasher(reduced, options);
    for (netlist::NetId bit : unified.bits) {
      const auto red_bit = reduced.find_net(p.bench.netlist.net(bit).name);
      ASSERT_TRUE(red_bit.has_value());
      const auto virtual_sig = virtual_hasher.signature(bit, &prop.map);
      const auto reduced_sig = reduced_hasher.signature(*red_bit);
      EXPECT_TRUE(virtual_sig.structurally_equal(reduced_sig))
          << p.bench.netlist.net(bit).name;
    }
  }
}

TEST_P(PropertyTest, WordSetIsAPartitionOfGateOutputs) {
  const auto& p = produced(GetParam());
  std::unordered_set<netlist::NetId> seen;
  std::size_t total = 0;
  for (const auto& word : p.result.words.words) {
    for (netlist::NetId bit : word.bits) {
      EXPECT_TRUE(seen.insert(bit).second) << "net in two words";
      ++total;
    }
  }
  EXPECT_EQ(total, p.bench.netlist.gate_count());
}

TEST_P(PropertyTest, UnifiedWordsAppearInTheWordSet) {
  const auto& p = produced(GetParam());
  const auto index = p.result.words.index_of_net();
  for (const auto& unified : p.result.unified) {
    ASSERT_FALSE(unified.bits.empty());
    const auto word = index.at(unified.bits[0]);
    for (netlist::NetId bit : unified.bits) EXPECT_EQ(index.at(bit), word);
  }
}

INSTANTIATE_TEST_SUITE_P(Family, PropertyTest,
                         ::testing::Values("b03s", "b08s", "b12s", "b15s"));

}  // namespace
}  // namespace netrev
