// Acceptance gate for the parallel pipeline: identify_words must produce a
// byte-identical result at any --jobs count on every family benchmark.  The
// parallel stages write into index-addressed slots merged in group order and
// all stochastic sampling uses fixed-size blocks keyed by Rng::stream, so
// nothing downstream may observe the worker count.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/thread_pool.h"
#include "itc/family.h"
#include "wordrec/identify.h"

namespace netrev {
namespace {

// Full serialization of an IdentifyResult — every field that identify_words
// computes, in order, so any divergence (words, assignments, stats) shows up
// as a string mismatch.
std::string fingerprint(const wordrec::IdentifyResult& result) {
  std::ostringstream out;
  out << "words:";
  for (const auto& word : result.words.words) {
    out << " [";
    for (netlist::NetId bit : word.bits) out << ' ' << bit.value();
    out << " ]";
  }
  out << "\nunified:";
  for (const auto& unified : result.unified) {
    out << " {bits:";
    for (netlist::NetId bit : unified.bits) out << ' ' << bit.value();
    out << " assign:";
    for (const auto& [net, value] : unified.assignment)
      out << ' ' << net.value() << '=' << (value ? 1 : 0);
    out << '}';
  }
  out << "\ncontrols:";
  for (netlist::NetId net : result.used_control_signals)
    out << ' ' << net.value();
  const auto& s = result.stats;
  out << "\nstats: g=" << s.groups << " sg=" << s.subgroups
      << " partial=" << s.partial_subgroups
      << " cand=" << s.control_signal_candidates
      << " trials=" << s.reduction_trials << " unified=" << s.unified_subgroups;
  return out.str();
}

class JobsDeterminism : public ::testing::TestWithParam<const char*> {};

TEST_P(JobsDeterminism, IdentifyIsByteIdenticalAcrossJobCounts) {
  const auto bench = itc::build_benchmark(GetParam());
  const std::size_t restore = ThreadPool::global_jobs();

  ThreadPool::set_global_jobs(1);
  const std::string serial = fingerprint(wordrec::identify_words(bench.netlist));
  for (std::size_t jobs : {2u, 8u}) {
    ThreadPool::set_global_jobs(jobs);
    EXPECT_EQ(fingerprint(wordrec::identify_words(bench.netlist)), serial)
        << GetParam() << " diverged at jobs=" << jobs;
  }

  ThreadPool::set_global_jobs(restore);
}

INSTANTIATE_TEST_SUITE_P(FamilyBenchmarks, JobsDeterminism,
                         ::testing::Values("b03s", "b04s", "b08s", "b11s",
                                           "b13s"));

}  // namespace
}  // namespace netrev
