// Fuzz-style property tests over random well-formed netlists: parsers,
// simulator, constant propagation, reduction, and identification must hold
// their invariants on arbitrary circuits, not just the structured family.
#include <gtest/gtest.h>

#include <unordered_set>

#include "netlist/compare.h"
#include "netlist/random_netlist.h"
#include "netlist/validate.h"
#include "parser/bench_parser.h"
#include "parser/verilog_parser.h"
#include "parser/verilog_writer.h"
#include "sim/equivalence.h"
#include "sim/simulator.h"
#include "wordrec/assignment.h"
#include "wordrec/baseline.h"
#include "wordrec/identify.h"
#include "wordrec/reduce.h"

namespace netrev {
namespace {

using netlist::NetId;
using netlist::Netlist;
using netlist::RandomNetlistSpec;

class FuzzTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static Netlist make(std::uint64_t seed) {
    RandomNetlistSpec spec;
    spec.seed = seed;
    spec.primary_inputs = 6 + seed % 5;
    spec.combinational_gates = 60 + (seed * 7) % 90;
    spec.flops = 4 + seed % 6;
    spec.include_constants = seed % 3 == 0;
    return netlist::random_netlist(spec);
  }
};

TEST_P(FuzzTest, AlwaysValidates) {
  const Netlist nl = make(GetParam());
  const auto report = netlist::validate(nl);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_EQ(report.warning_count(), 0u) << report.to_string();
}

TEST_P(FuzzTest, VerilogRoundTrips) {
  const Netlist nl = make(GetParam());
  const Netlist back = parser::parse_verilog(parser::write_verilog(nl));
  const auto diff = netlist::structural_difference(nl, back);
  EXPECT_FALSE(diff.has_value()) << *diff;
}

TEST_P(FuzzTest, BenchRoundTrips) {
  const Netlist nl = make(GetParam());
  const Netlist back = parser::parse_bench(parser::write_bench(nl));
  const auto diff = netlist::structural_difference(nl, back);
  EXPECT_FALSE(diff.has_value()) << *diff;
}

TEST_P(FuzzTest, PropagationClosureIsSimulationSound) {
  const Netlist nl = make(GetParam());
  Rng rng(GetParam() * 977);
  // Seed two random internal nets with random values.
  std::vector<std::pair<NetId, bool>> seeds;
  for (int k = 0; k < 2; ++k) {
    const std::size_t g = rng.next_below(nl.gate_count());
    const NetId net = nl.gate(nl.gate_id_at(g)).output;
    seeds.emplace_back(net, rng.next_bool());
  }
  const auto prop = wordrec::propagate(nl, seeds);
  if (!prop.feasible) return;  // contradictory seeds: nothing to check
  std::unordered_map<NetId, bool> implied(prop.map.entries().begin(),
                                          prop.map.entries().end());
  const auto check =
      sim::check_implications(nl, seeds, implied, 300, GetParam() * 31 + 7);
  EXPECT_EQ(check.violations, 0u);
}

TEST_P(FuzzTest, ReductionValidatesAndPreservesBehaviour) {
  const Netlist nl = make(GetParam());
  Rng rng(GetParam() * 131);
  // Pick a random single-net assumption that is feasible.
  for (int attempt = 0; attempt < 5; ++attempt) {
    const std::size_t g = rng.next_below(nl.gate_count());
    const NetId net = nl.gate(nl.gate_id_at(g)).output;
    const std::pair<NetId, bool> seeds[] = {{net, rng.next_bool()}};
    const auto prop = wordrec::propagate(nl, seeds);
    if (!prop.feasible) continue;
    const Netlist reduced = wordrec::materialize_reduction(nl, prop.map);
    const auto report = netlist::validate(reduced);
    ASSERT_TRUE(report.ok()) << report.to_string();
    const auto equivalence =
        sim::check_reduction_equivalence(nl, reduced, seeds, 200, 5 + attempt);
    EXPECT_EQ(equivalence.mismatches, 0u);
    return;
  }
  GTEST_SKIP() << "no feasible single-net assumption found";
}

TEST_P(FuzzTest, IdentificationOutputIsAPartition) {
  const Netlist nl = make(GetParam());
  const auto result = wordrec::identify_words(nl);
  std::unordered_set<NetId> seen;
  std::size_t total = 0;
  for (const auto& word : result.words.words) {
    for (NetId bit : word.bits) {
      EXPECT_TRUE(seen.insert(bit).second);
      ++total;
    }
  }
  EXPECT_EQ(total, nl.gate_count());
}

TEST_P(FuzzTest, IdentificationNeverBeatenByBaselineOnWordCount) {
  const Netlist nl = make(GetParam());
  const auto ours = wordrec::identify_words(nl);
  const auto base = wordrec::identify_words_baseline(nl);
  // Ours refines Base: its multi-bit coverage can only grow.
  std::size_t ours_covered = 0, base_covered = 0;
  for (const auto& word : ours.words.words)
    if (word.width() >= 2) ours_covered += word.width();
  for (const auto& word : base.words)
    if (word.width() >= 2) base_covered += word.width();
  EXPECT_GE(ours_covered, base_covered);
}

TEST_P(FuzzTest, SimulatorIsDeterministic) {
  const Netlist nl = make(GetParam());
  sim::Simulator sim1(nl), sim2(nl);
  Rng r1(99), r2(99);
  sim1.randomize_inputs(r1);
  sim1.randomize_state(r1);
  sim2.randomize_inputs(r2);
  sim2.randomize_state(r2);
  sim1.eval();
  sim2.eval();
  for (int cycle = 0; cycle < 3; ++cycle) {
    sim1.step();
    sim2.step();
  }
  for (std::size_t i = 0; i < nl.net_count(); ++i)
    EXPECT_EQ(sim1.value(nl.net_id_at(i)), sim2.value(nl.net_id_at(i)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12));

}  // namespace
}  // namespace netrev
