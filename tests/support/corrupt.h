// Deterministic netlist-source mutator for fault-injection tests.
//
// corrupt() damages a textual netlist (.bench or structural Verilog) in one
// of five seeded ways and returns the mutated source.  The same
// (source, kind, seed) triple always yields the same mutation, so failures
// reproduce exactly.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace netrev::testing {

enum class CorruptionKind {
  kDeleteLine,        // remove one non-empty line
  kSwapTokens,        // swap two word tokens on one line
  kMangleName,        // corrupt one identifier (invalid char or unknown name)
  kTruncate,          // cut the file at a random byte offset
  kDuplicateDriver,   // duplicate a gate/assign line (second driver)
};

inline constexpr std::array<CorruptionKind, 5> kAllCorruptionKinds = {
    CorruptionKind::kDeleteLine,      CorruptionKind::kSwapTokens,
    CorruptionKind::kMangleName,      CorruptionKind::kTruncate,
    CorruptionKind::kDuplicateDriver,
};

const char* corruption_name(CorruptionKind kind);

// True for kinds whose damage is confined to a single line (the gate-recovery
// bar applies only to these; truncation may destroy arbitrary suffixes).
bool single_line_corruption(CorruptionKind kind);

// Returns a damaged copy of `source`.  Deterministic in (source, kind, seed).
std::string corrupt(std::string_view source, CorruptionKind kind,
                    std::uint64_t seed);

}  // namespace netrev::testing
