#include "support/corrupt.h"

#include <cctype>
#include <utility>
#include <vector>

#include "common/rng.h"

namespace netrev::testing {

namespace {

struct TokenSpan {
  std::size_t begin = 0;
  std::size_t length = 0;
};

bool is_word_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Runs of identifier characters within `line`.
std::vector<TokenSpan> word_tokens(std::string_view line) {
  std::vector<TokenSpan> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    if (!is_word_char(line[i])) {
      ++i;
      continue;
    }
    const std::size_t begin = i;
    while (i < line.size() && is_word_char(line[i])) ++i;
    tokens.push_back({begin, i - begin});
  }
  return tokens;
}

std::vector<std::string> split_lines(std::string_view source) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= source.size()) {
    const std::size_t nl = source.find('\n', start);
    if (nl == std::string_view::npos) {
      lines.emplace_back(source.substr(start));
      break;
    }
    lines.emplace_back(source.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

std::string join_lines(const std::vector<std::string>& lines) {
  std::string out;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    out += lines[i];
    if (i + 1 < lines.size()) out += '\n';
  }
  return out;
}

bool is_blank_or_comment(const std::string& line) {
  const std::size_t pos = line.find_first_not_of(" \t");
  if (pos == std::string::npos) return true;
  return line[pos] == '#' || line.compare(pos, 2, "//") == 0;
}

// A line that creates a driver for some net: a .bench gate assignment, a
// Verilog cell instance, or a Verilog constant assign.  Duplicating one of
// these injects a duplicate-driver fault.
bool is_driver_line(const std::string& line) {
  const std::size_t pos = line.find_first_not_of(" \t");
  if (pos == std::string::npos) return false;
  const std::string_view t = std::string_view(line).substr(pos);
  if (t.starts_with("#") || t.starts_with("//")) return false;
  if (t.starts_with("module") || t.starts_with("endmodule")) return false;
  if (t.starts_with("INPUT(") || t.starts_with("OUTPUT(")) return false;
  if (t.starts_with("input") || t.starts_with("output") ||
      t.starts_with("wire"))
    return false;
  if (t.starts_with("assign")) return true;
  return t.find('(') != std::string_view::npos;
}

// Index of a random line satisfying `pred`; npos when none does.
template <typename Pred>
std::size_t pick_line(const std::vector<std::string>& lines, Rng& rng,
                      Pred pred) {
  std::vector<std::size_t> candidates;
  for (std::size_t i = 0; i < lines.size(); ++i)
    if (pred(lines[i])) candidates.push_back(i);
  if (candidates.empty()) return std::string::npos;
  return candidates[rng.next_below(candidates.size())];
}

std::string delete_line(std::string_view source, Rng& rng) {
  std::vector<std::string> lines = split_lines(source);
  const std::size_t victim = pick_line(
      lines, rng, [](const std::string& l) { return !is_blank_or_comment(l); });
  if (victim == std::string::npos) return std::string(source);
  lines.erase(lines.begin() + static_cast<std::ptrdiff_t>(victim));
  return join_lines(lines);
}

std::string swap_tokens(std::string_view source, Rng& rng) {
  std::vector<std::string> lines = split_lines(source);
  const std::size_t victim =
      pick_line(lines, rng, [](const std::string& l) {
        return !is_blank_or_comment(l) && word_tokens(l).size() >= 2;
      });
  if (victim == std::string::npos) return std::string(source);
  std::string& line = lines[victim];
  const std::vector<TokenSpan> tokens = word_tokens(line);
  const std::size_t a = rng.next_below(tokens.size());
  std::size_t b = rng.next_below(tokens.size() - 1);
  if (b >= a) ++b;
  const TokenSpan first = tokens[a < b ? a : b];
  const TokenSpan second = tokens[a < b ? b : a];
  const std::string first_text = line.substr(first.begin, first.length);
  const std::string second_text = line.substr(second.begin, second.length);
  // Replace back-to-front so earlier offsets stay valid.
  line.replace(second.begin, second.length, first_text);
  line.replace(first.begin, first.length, second_text);
  return join_lines(lines);
}

std::string mangle_name(std::string_view source, Rng& rng) {
  std::vector<std::string> lines = split_lines(source);
  const std::size_t victim =
      pick_line(lines, rng, [](const std::string& l) {
        if (is_blank_or_comment(l)) return false;
        for (const TokenSpan& token : word_tokens(l))
          if (std::isalpha(static_cast<unsigned char>(l[token.begin])) != 0)
            return true;
        return false;
      });
  if (victim == std::string::npos) return std::string(source);
  std::string& line = lines[victim];
  std::vector<TokenSpan> names;
  for (const TokenSpan& token : word_tokens(line))
    if (std::isalpha(static_cast<unsigned char>(line[token.begin])) != 0)
      names.push_back(token);
  const TokenSpan name = names[rng.next_below(names.size())];
  if (rng.next_bool()) {
    // Lexically invalid character inside the identifier.
    const std::size_t offset = rng.next_below(name.length);
    line[name.begin + offset] = '~';
  } else {
    // Still a valid identifier, but one nothing else references.
    line.insert(name.begin + name.length, "_zz9");
  }
  return join_lines(lines);
}

std::string truncate(std::string_view source, Rng& rng) {
  if (source.size() < 2) return std::string(source);
  const std::size_t keep = 1 + rng.next_below(source.size() - 1);
  return std::string(source.substr(0, keep));
}

std::string duplicate_driver(std::string_view source, Rng& rng) {
  std::vector<std::string> lines = split_lines(source);
  const std::size_t victim = pick_line(lines, rng, is_driver_line);
  if (victim == std::string::npos) return std::string(source);
  lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(victim) + 1,
               lines[victim]);
  return join_lines(lines);
}

}  // namespace

const char* corruption_name(CorruptionKind kind) {
  switch (kind) {
    case CorruptionKind::kDeleteLine: return "delete-line";
    case CorruptionKind::kSwapTokens: return "swap-tokens";
    case CorruptionKind::kMangleName: return "mangle-name";
    case CorruptionKind::kTruncate: return "truncate";
    case CorruptionKind::kDuplicateDriver: return "duplicate-driver";
  }
  return "unknown";
}

bool single_line_corruption(CorruptionKind kind) {
  return kind != CorruptionKind::kTruncate;
}

std::string corrupt(std::string_view source, CorruptionKind kind,
                    std::uint64_t seed) {
  // Mix the kind into the seed so different kinds at the same seed do not
  // pick the same victim line.
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + static_cast<std::uint64_t>(kind));
  switch (kind) {
    case CorruptionKind::kDeleteLine: return delete_line(source, rng);
    case CorruptionKind::kSwapTokens: return swap_tokens(source, rng);
    case CorruptionKind::kMangleName: return mangle_name(source, rng);
    case CorruptionKind::kTruncate: return truncate(source, rng);
    case CorruptionKind::kDuplicateDriver:
      return duplicate_driver(source, rng);
  }
  return std::string(source);
}

}  // namespace netrev::testing
