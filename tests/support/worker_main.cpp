// Custom gtest main that doubles as a netrev worker.
//
// The WorkerPool's default executable is /proc/self/exe — inside a test
// process that is THIS binary.  Re-executed with "worker" as its first
// argument it routes straight into the real CLI worker mode, so the
// isolation tests exercise the production fork/exec/pipe path without
// depending on the location of the installed netrev binary.
#include <gtest/gtest.h>

#include <cstring>
#include <iostream>

#include "cli/cli.h"

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "worker") == 0)
    return netrev::cli::run_cli(argc, argv, std::cout, std::cerr);
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
