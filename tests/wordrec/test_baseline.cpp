#include "wordrec/baseline.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace netrev::wordrec {
namespace {

using netlist::GateType;
using netlist::NetId;
using netlist::Netlist;

struct Builder {
  Netlist nl;
  std::vector<NetId> srcs;
  int counter = 0;

  Builder() {
    for (int i = 0; i < 8; ++i) {
      srcs.push_back(nl.add_net("s" + std::to_string(i)));
      nl.mark_primary_input(srcs.back());
    }
  }

  NetId fresh(const std::string& prefix) {
    return nl.add_net(prefix + std::to_string(counter++));
  }

  // A clean mux-style bit: root NAND(n0, n1) over sources (i, i+1).
  NetId clean_bit(int i) {
    const NetId n0 = fresh("n");
    nl.add_gate(GateType::kNand, n0, {srcs[static_cast<std::size_t>(i % 8)],
                                      srcs[static_cast<std::size_t>((i + 1) % 8)]});
    const NetId n1 = fresh("n");
    nl.add_gate(GateType::kNor, n1, {srcs[static_cast<std::size_t>(i % 8)],
                                     srcs[static_cast<std::size_t>((i + 2) % 8)]});
    const NetId root = fresh("bit");
    nl.add_gate(GateType::kNand, root, {n0, n1});
    return root;
  }
};

std::optional<Word> word_containing(const WordSet& words, NetId bit,
                                    std::size_t min_width = 2) {
  for (const Word& word : words.words) {
    if (word.width() < min_width) continue;
    if (std::find(word.bits.begin(), word.bits.end(), bit) != word.bits.end())
      return word;
  }
  return std::nullopt;
}

TEST(Baseline, GroupsFullyMatchingAdjacentBits) {
  Builder b;
  // Inner gates first, then the roots adjacent — like synthesized output.
  std::vector<NetId> inner_done;
  std::vector<std::pair<NetId, NetId>> pending;
  for (int i = 0; i < 4; ++i) {
    const NetId n0 = b.fresh("n");
    b.nl.add_gate(GateType::kNand, n0, {b.srcs[static_cast<std::size_t>(i)],
                                        b.srcs[static_cast<std::size_t>(i + 1)]});
    const NetId n1 = b.fresh("n");
    b.nl.add_gate(GateType::kNor, n1, {b.srcs[static_cast<std::size_t>(i)],
                                       b.srcs[static_cast<std::size_t>(i + 2)]});
    pending.emplace_back(n0, n1);
  }
  std::vector<NetId> bits;
  for (auto& [n0, n1] : pending) {
    const NetId root = b.fresh("bit");
    b.nl.add_gate(GateType::kNand, root, {n0, n1});
    bits.push_back(root);
  }

  const WordSet words = identify_words_baseline(b.nl);
  const auto word = word_containing(words, bits[0]);
  ASSERT_TRUE(word.has_value());
  EXPECT_EQ(word->bits, bits);
}

TEST(Baseline, PartitionCoversEveryGateOutput) {
  Builder b;
  for (int i = 0; i < 6; ++i) b.clean_bit(i);
  const WordSet words = identify_words_baseline(b.nl);
  const auto index = words.index_of_net();
  for (std::size_t g = 0; g < b.nl.gate_count(); ++g)
    EXPECT_TRUE(index.contains(b.nl.gate(b.nl.gate_id_at(g)).output));
}

TEST(Baseline, PartitionHasNoOverlaps) {
  Builder b;
  for (int i = 0; i < 6; ++i) b.clean_bit(i);
  const WordSet words = identify_words_baseline(b.nl);
  std::size_t total = 0;
  for (const Word& word : words.words) total += word.width();
  EXPECT_EQ(total, b.nl.gate_count());
}

TEST(Baseline, PartialMatchDoesNotChain) {
  Builder b;
  // bit0: {NAND, NOR} subtrees; bit1 same plus an extra XOR subtree.
  const NetId n0a = b.fresh("n");
  b.nl.add_gate(GateType::kNand, n0a, {b.srcs[0], b.srcs[1]});
  const NetId n1a = b.fresh("n");
  b.nl.add_gate(GateType::kNor, n1a, {b.srcs[0], b.srcs[2]});
  const NetId n0b = b.fresh("n");
  b.nl.add_gate(GateType::kNand, n0b, {b.srcs[0], b.srcs[1]});
  const NetId n1b = b.fresh("n");
  b.nl.add_gate(GateType::kNor, n1b, {b.srcs[0], b.srcs[2]});
  const NetId extra = b.fresh("x");
  b.nl.add_gate(GateType::kXor, extra, {b.srcs[3], b.srcs[4]});
  const NetId bit0 = b.fresh("bit");
  b.nl.add_gate(GateType::kNand, bit0, {n0a, n1a});
  const NetId bit1 = b.fresh("bit");
  b.nl.add_gate(GateType::kNand, bit1, {n0b, n1b, extra});

  const WordSet words = identify_words_baseline(b.nl);
  EXPECT_FALSE(word_containing(words, bit0).has_value());
  EXPECT_FALSE(word_containing(words, bit1).has_value());
}

TEST(Baseline, ConeDepthOptionChangesDiscrimination) {
  Builder b;
  // Bits identical to depth 2 but diverging at depth 3.
  const NetId deep_a = b.fresh("d");
  b.nl.add_gate(GateType::kAnd, deep_a, {b.srcs[0], b.srcs[1]});
  const NetId deep_b = b.fresh("d");
  b.nl.add_gate(GateType::kXor, deep_b, {b.srcs[0], b.srcs[1]});
  const NetId mid_a = b.fresh("m");
  b.nl.add_gate(GateType::kNot, mid_a, {deep_a});
  const NetId mid_b = b.fresh("m");
  b.nl.add_gate(GateType::kNot, mid_b, {deep_b});
  const NetId bit_a = b.fresh("bit");
  b.nl.add_gate(GateType::kNand, bit_a, {mid_a, b.srcs[2]});
  const NetId bit_b = b.fresh("bit");
  b.nl.add_gate(GateType::kNand, bit_b, {mid_b, b.srcs[2]});

  Options shallow;
  shallow.cone_depth = 2;  // divergence is below the horizon
  const WordSet blurred = identify_words_baseline(b.nl, shallow);
  EXPECT_TRUE(word_containing(blurred, bit_a).has_value());

  Options deep;
  deep.cone_depth = 3;
  const WordSet sharp = identify_words_baseline(b.nl, deep);
  EXPECT_FALSE(word_containing(sharp, bit_a).has_value());
}

TEST(Baseline, FlopOutputsNeverFormWords) {
  Builder b;
  const NetId d = b.clean_bit(0);
  const NetId q1 = b.fresh("q");
  const NetId q2 = b.fresh("q");
  b.nl.add_gate(GateType::kDff, q1, {d});
  b.nl.add_gate(GateType::kDff, q2, {d});
  const WordSet words = identify_words_baseline(b.nl);
  EXPECT_FALSE(word_containing(words, q1).has_value());
}

TEST(Baseline, EmptyNetlist) {
  const WordSet words = identify_words_baseline(Netlist{});
  EXPECT_TRUE(words.words.empty());
}

}  // namespace
}  // namespace netrev::wordrec
