// The paper's Figure 1 walk-through as an executable specification (see
// also bench/fig1_casestudy.cpp which narrates the same steps).
#include <gtest/gtest.h>

#include <algorithm>

#include "itc/fig1.h"
#include "netlist/validate.h"
#include "wordrec/baseline.h"
#include "wordrec/control.h"
#include "wordrec/identify.h"
#include "wordrec/matching.h"

namespace netrev::wordrec {
namespace {

using itc::Fig1Circuit;
using netlist::NetId;

class Fig1Test : public ::testing::Test {
 protected:
  Fig1Test() : fig_(itc::build_fig1_circuit()), hasher_(fig_.netlist, options_) {}

  std::vector<NetId> dissimilar_roots() const {
    std::vector<NetId> roots;
    for (std::size_t i = 0; i + 1 < fig_.word_bits.size(); ++i) {
      const auto match =
          compare_bits(hasher_.signature(fig_.word_bits[i]),
                       hasher_.signature(fig_.word_bits[i + 1]));
      for (const auto& side : {match.dissimilar_a, match.dissimilar_b})
        for (NetId root : side)
          if (std::find(roots.begin(), roots.end(), root) == roots.end())
            roots.push_back(root);
    }
    return roots;
  }

  bool unified_under(std::initializer_list<std::pair<NetId, bool>> seeds) const {
    const std::vector<std::pair<NetId, bool>> seed_vec(seeds);
    const auto prop = propagate(fig_.netlist, seed_vec);
    if (!prop.feasible) return false;
    const auto first = hasher_.signature(fig_.word_bits[0], &prop.map);
    if (!first.root_type.has_value()) return false;
    for (std::size_t i = 1; i < fig_.word_bits.size(); ++i)
      if (!first.structurally_equal(
              hasher_.signature(fig_.word_bits[i], &prop.map)))
        return false;
    return true;
  }

  Options options_;
  Fig1Circuit fig_;
  ConeHasher hasher_;
};

TEST_F(Fig1Test, CircuitValidates) {
  EXPECT_TRUE(netlist::validate(fig_.netlist).ok());
}

TEST_F(Fig1Test, BitsOnlyPartiallyMatch) {
  for (std::size_t i = 0; i + 1 < fig_.word_bits.size(); ++i) {
    const auto match = compare_bits(hasher_.signature(fig_.word_bits[i]),
                                    hasher_.signature(fig_.word_bits[i + 1]));
    EXPECT_FALSE(match.full);
    EXPECT_TRUE(match.partial);
  }
}

TEST_F(Fig1Test, TwoSimilarSubtreesPerBitPair) {
  const auto match = compare_bits(hasher_.signature(fig_.word_bits[0]),
                                  hasher_.signature(fig_.word_bits[1]));
  // 3 subtrees each, exactly one dissimilar on each side.
  EXPECT_EQ(match.dissimilar_a.size(), 1u);
  EXPECT_EQ(match.dissimilar_b.size(), 1u);
}

TEST_F(Fig1Test, BaselineCannotGroupTheWord) {
  const WordSet base = identify_words_baseline(fig_.netlist, options_);
  const auto index = base.index_of_net();
  const auto w0 = index.at(fig_.word_bits[0]);
  const auto w1 = index.at(fig_.word_bits[1]);
  const auto w2 = index.at(fig_.word_bits[2]);
  EXPECT_NE(w0, w1);
  EXPECT_NE(w1, w2);
}

TEST_F(Fig1Test, ControlDiscoveryFindsU201AndU221) {
  const auto signals =
      find_relevant_control_signals(fig_.netlist, dissimilar_roots(), options_);
  ASSERT_EQ(signals.size(), 2u);
  EXPECT_TRUE(std::find(signals.begin(), signals.end(), fig_.u201) !=
              signals.end());
  EXPECT_TRUE(std::find(signals.begin(), signals.end(), fig_.u221) !=
              signals.end());
}

TEST_F(Fig1Test, DominatedU223IsDropped) {
  const auto signals =
      find_relevant_control_signals(fig_.netlist, dissimilar_roots(), options_);
  EXPECT_TRUE(std::find(signals.begin(), signals.end(), fig_.u223) ==
              signals.end());
}

TEST_F(Fig1Test, MatchingSubtreeSelectsAreNotCandidates) {
  const auto signals =
      find_relevant_control_signals(fig_.netlist, dissimilar_roots(), options_);
  EXPECT_TRUE(std::find(signals.begin(), signals.end(), fig_.u202) ==
              signals.end());
  EXPECT_TRUE(std::find(signals.begin(), signals.end(), fig_.u255) ==
              signals.end());
}

TEST_F(Fig1Test, U221AloneRemovesOnlyTwoSubtrees) {
  EXPECT_FALSE(unified_under({{fig_.u221, false}}));
}

TEST_F(Fig1Test, U201AloneUnifiesAllThreeBits) {
  EXPECT_TRUE(unified_under({{fig_.u201, false}}));
}

TEST_F(Fig1Test, PairAssignmentAlsoUnifies) {
  EXPECT_TRUE(unified_under({{fig_.u201, false}, {fig_.u221, false}}));
}

TEST_F(Fig1Test, FullPipelineIdentifiesTheWord) {
  const IdentifyResult ours = identify_words(fig_.netlist, options_);
  bool found = false;
  for (const UnifiedWord& word : ours.unified) {
    bool all = true;
    for (NetId bit : fig_.word_bits)
      if (std::find(word.bits.begin(), word.bits.end(), bit) == word.bits.end())
        all = false;
    if (!all) continue;
    found = true;
    ASSERT_EQ(word.assignment.size(), 1u);
    EXPECT_EQ(word.assignment[0].first, fig_.u201);
    EXPECT_EQ(word.assignment[0].second, false);
  }
  EXPECT_TRUE(found);
}

TEST_F(Fig1Test, StraysDoNotJoinTheWord) {
  const IdentifyResult ours = identify_words(fig_.netlist, options_);
  const auto index = ours.words.index_of_net();
  const auto word_index = index.at(fig_.word_bits[0]);
  const auto stray = fig_.netlist.find_net("U218");
  ASSERT_TRUE(stray.has_value());
  EXPECT_NE(index.at(*stray), word_index);
}

}  // namespace
}  // namespace netrev::wordrec
