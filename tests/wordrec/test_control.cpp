#include "wordrec/control.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/dataflow.h"

namespace netrev::wordrec {
namespace {

using netlist::GateType;
using netlist::NetId;
using netlist::Netlist;

struct Builder {
  Netlist nl;
  Options options;

  NetId pi(const std::string& name) {
    const NetId id = nl.add_net(name);
    nl.mark_primary_input(id);
    return id;
  }
  NetId gate(GateType type, const std::string& name,
             std::initializer_list<NetId> ins) {
    const NetId id = nl.add_net(name);
    nl.add_gate(type, id, ins);
    return id;
  }
};

bool contains(const std::vector<NetId>& nets, NetId id) {
  return std::find(nets.begin(), nets.end(), id) != nets.end();
}

// Three dissimilar subtrees sharing the control pair (ctrl dominated net t).
struct SharedControlFixture : Builder {
  NetId ctrl, t, e0, e1, e2;

  SharedControlFixture() {
    const NetId p1 = pi("p1"), p2 = pi("p2"), p3 = pi("p3");
    const NetId z0 = pi("z0"), z1 = pi("z1"), z2 = pi("z2");
    t = gate(GateType::kNand, "t", {p1, p2});
    ctrl = gate(GateType::kNor, "ctrl", {t, p3});
    e0 = gate(GateType::kNand, "e0", {ctrl, z0});
    const NetId g1 = gate(GateType::kNot, "g1", {z1});
    e1 = gate(GateType::kNand, "e1", {ctrl, g1});
    const NetId g2 = gate(GateType::kAnd, "g2", {z1, z2});
    e2 = gate(GateType::kNand, "e2", {ctrl, g2});
  }
};

TEST(ControlSignals, FindsSharedSignalAcrossSubtrees) {
  SharedControlFixture f;
  const NetId roots[] = {f.e0, f.e1, f.e2};
  const auto signals = find_relevant_control_signals(f.nl, roots, f.options);
  ASSERT_EQ(signals.size(), 1u);
  EXPECT_EQ(signals[0], f.ctrl);
}

TEST(ControlSignals, DominatedNetsRemoved) {
  SharedControlFixture f;
  const NetId roots[] = {f.e0, f.e1, f.e2};
  const auto signals = find_relevant_control_signals(f.nl, roots, f.options);
  EXPECT_FALSE(contains(signals, f.t));  // t is in ctrl's fanin cone
}

TEST(ControlSignals, SubtreeRootsAreNeverCandidates) {
  SharedControlFixture f;
  // Degenerate single-subtree case: the common set is e0's whole cone; the
  // root e0 must be excluded, leaving ctrl and the garnish source.
  const NetId roots[] = {f.e0};
  const auto signals = find_relevant_control_signals(f.nl, roots, f.options);
  EXPECT_FALSE(contains(signals, f.e0));
  EXPECT_TRUE(contains(signals, f.ctrl));
}

TEST(ControlSignals, EmptyWhenNothingCommon) {
  Builder b;
  const NetId a = b.pi("a"), c = b.pi("c"), d = b.pi("d"), e = b.pi("e");
  const NetId r1 = b.gate(GateType::kNand, "r1", {a, c});
  const NetId r2 = b.gate(GateType::kNand, "r2", {d, e});
  const NetId roots[] = {r1, r2};
  EXPECT_TRUE(find_relevant_control_signals(b.nl, roots, b.options).empty());
}

TEST(ControlSignals, EmptyForNoRoots) {
  Builder b;
  EXPECT_TRUE(find_relevant_control_signals(
                  b.nl, std::span<const NetId>{}, b.options)
                  .empty());
}

TEST(ControlSignals, ConstantsAreExcluded) {
  Builder b;
  const NetId one = b.gate(GateType::kConst1, "one", {});
  const NetId z0 = b.pi("z0"), z1 = b.pi("z1");
  const NetId r1 = b.gate(GateType::kNand, "r1", {one, z0});
  const NetId r2 = b.gate(GateType::kNand, "r2", {one, z1});
  const NetId roots[] = {r1, r2};
  const auto signals = find_relevant_control_signals(b.nl, roots, b.options);
  EXPECT_FALSE(contains(signals, one));
}

TEST(ControlSignals, DepthBoundLimitsCommonality) {
  // The shared net sits deeper than the subtree depth; with cone_depth = 2
  // (subtree depth 1) it is invisible.
  SharedControlFixture f;
  Options shallow = f.options;
  shallow.cone_depth = 2;
  const NetId roots[] = {f.e1, f.e2};  // ctrl at depth 1 is still visible
  auto signals = find_relevant_control_signals(f.nl, roots, shallow);
  EXPECT_TRUE(contains(signals, f.ctrl));
  // t is at depth 2 from the roots; it cannot even be listed, and ctrl is
  // not dominated within the restricted view either.
  EXPECT_FALSE(contains(signals, f.t));
}

TEST(ControlSignals, PairOfSignalsBothKept) {
  Builder b;
  const NetId ca = b.pi("ca"), cb = b.pi("cb");
  const NetId z0 = b.pi("z0"), z1 = b.pi("z1");
  const NetId ea0 = b.gate(GateType::kNand, "ea0", {ca, z0});
  const NetId eb0 = b.gate(GateType::kNand, "eb0", {cb, z0});
  const NetId r0 = b.gate(GateType::kAnd, "r0", {ea0, eb0});
  const NetId ea1 = b.gate(GateType::kNand, "ea1", {ca, z1});
  const NetId eb1 = b.gate(GateType::kNand, "eb1", {cb, z1});
  const NetId r1 = b.gate(GateType::kAnd, "r1", {ea1, eb1});
  const NetId roots[] = {r0, r1};
  const auto signals = find_relevant_control_signals(b.nl, roots, b.options);
  EXPECT_TRUE(contains(signals, ca));
  EXPECT_TRUE(contains(signals, cb));
}

TEST(ControlSignals, CapRespected) {
  Builder b;
  // Many independent common PIs -> cap kicks in.
  std::vector<NetId> shared;
  for (int i = 0; i < 12; ++i) shared.push_back(b.pi("s" + std::to_string(i)));
  std::vector<NetId> r0_ins = shared;
  std::vector<NetId> r1_ins = shared;
  const NetId r0 = b.nl.add_net("r0");
  b.nl.add_gate(GateType::kNand, r0, r0_ins);
  const NetId r1 = b.nl.add_net("r1");
  b.nl.add_gate(GateType::kNand, r1, r1_ins);
  Options capped = b.options;
  capped.max_control_signals_per_subgroup = 4;
  const NetId roots[] = {r0, r1};
  const auto signals = find_relevant_control_signals(b.nl, roots, capped);
  EXPECT_EQ(signals.size(), 4u);
}

TEST(ControlSignals, SubgroupOverloadUnionsPerBitRoots) {
  SharedControlFixture f;
  Subgroup sg;
  sg.bits = {f.pi("b0"), f.pi("b1"), f.pi("b2")};
  sg.dissimilar = {{f.e0}, {f.e1, f.e0}, {f.e2}};  // duplicates tolerated
  const auto signals = find_relevant_control_signals(f.nl, sg, f.options);
  ASSERT_EQ(signals.size(), 1u);
  EXPECT_EQ(signals[0], f.ctrl);
}

// Two dissimilar subtrees whose common cone contains a live control `ctrl`,
// a *derived* constant k = AND(a, 0) (the ternary engine proves it 0), and
// k's fanin `a`.  Default candidates: {ctrl, k} — a is dominated by k.
struct DerivedConstantFixture : Builder {
  NetId a, k, ctrl, r0, r1;

  DerivedConstantFixture() {
    a = pi("a");
    ctrl = pi("ctrl");
    const NetId c0 = gate(GateType::kConst0, "c0", {});
    k = gate(GateType::kAnd, "k", {a, c0});
    r0 = gate(GateType::kNand, "r0", {ctrl, k, pi("z0")});
    r1 = gate(GateType::kNand, "r1", {ctrl, k, pi("z1")});
  }

  std::vector<NetId> signals(const Options& opts) const {
    const NetId roots[] = {r0, r1};
    return find_relevant_control_signals(nl, roots, opts);
  }
};

TEST(ControlSignals, DataflowPruningRemovesExactlyTheProvenConstants) {
  DerivedConstantFixture f;
  const std::vector<NetId> fallback = f.signals(f.options);
  EXPECT_TRUE(contains(fallback, f.ctrl));
  EXPECT_TRUE(contains(fallback, f.k));

  const auto mask = analysis::run_dataflow(f.nl).constant_mask();
  Options pruning = f.options;
  pruning.use_dataflow = true;
  pruning.constant_nets = &mask;
  const std::vector<NetId> pruned = f.signals(pruning);

  // The knob's contract: pruned == default minus provably-constant nets,
  // nothing more and nothing less.
  std::vector<NetId> expected;
  for (NetId net : fallback)
    if (mask[net.value()] == 0) expected.push_back(net);
  EXPECT_EQ(pruned, expected);
  EXPECT_TRUE(contains(pruned, f.ctrl));
  EXPECT_FALSE(contains(pruned, f.k));
}

TEST(ControlSignals, PrunedConstantStillDominatesItsCone) {
  // If pruning dropped k before the dominance filter, k's fanin `a` would
  // surface as a brand-new candidate — which would violate the "only
  // removes" guarantee.  k must keep its dominator role.
  DerivedConstantFixture f;
  const auto mask = analysis::run_dataflow(f.nl).constant_mask();
  Options pruning = f.options;
  pruning.use_dataflow = true;
  pruning.constant_nets = &mask;
  const std::vector<NetId> pruned = f.signals(pruning);
  EXPECT_FALSE(contains(pruned, f.a));
}

TEST(ControlSignals, DataflowFlagWithoutMaskIsANoop) {
  DerivedConstantFixture f;
  const std::vector<NetId> fallback = f.signals(f.options);

  Options flag_only = f.options;
  flag_only.use_dataflow = true;  // mask left null
  EXPECT_EQ(f.signals(flag_only), fallback);

  const auto mask = analysis::run_dataflow(f.nl).constant_mask();
  Options mask_only = f.options;
  mask_only.constant_nets = &mask;  // flag left off
  EXPECT_EQ(f.signals(mask_only), fallback);
}

TEST(ControlSignals, AllZeroMaskPrunesNothing) {
  DerivedConstantFixture f;
  const std::vector<std::uint8_t> zeros(f.nl.net_count(), 0);
  Options pruning = f.options;
  pruning.use_dataflow = true;
  pruning.constant_nets = &zeros;
  EXPECT_EQ(f.signals(pruning), f.signals(f.options));
}

TEST(ControlSignals, DeterministicOrder) {
  Builder b;
  const NetId ca = b.pi("ca"), cb = b.pi("cb");
  const NetId z0 = b.pi("z0"), z1 = b.pi("z1");
  const NetId r0 = b.gate(GateType::kNand, "r0", {ca, cb, z0});
  const NetId r1 = b.gate(GateType::kNand, "r1", {ca, cb, z1});
  const NetId roots[] = {r0, r1};
  const auto signals = find_relevant_control_signals(b.nl, roots, b.options);
  ASSERT_EQ(signals.size(), 2u);
  EXPECT_LT(signals[0], signals[1]);  // ascending net id
}

}  // namespace
}  // namespace netrev::wordrec
