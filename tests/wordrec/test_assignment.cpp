#include "wordrec/assignment.h"

#include <gtest/gtest.h>

namespace netrev::wordrec {
namespace {

using netlist::GateType;
using netlist::NetId;
using netlist::Netlist;

struct Builder {
  Netlist nl;

  NetId pi(const std::string& name) {
    const NetId id = nl.add_net(name);
    nl.mark_primary_input(id);
    return id;
  }
  NetId gate(GateType type, const std::string& name,
             std::initializer_list<NetId> ins) {
    const NetId id = nl.add_net(name);
    nl.add_gate(type, id, ins);
    return id;
  }
};

using Seed = std::pair<NetId, bool>;

TEST(AssignmentMap, AssignAndConflict) {
  AssignmentMap map;
  EXPECT_TRUE(map.assign(NetId(1), true));
  EXPECT_TRUE(map.assign(NetId(1), true));   // idempotent
  EXPECT_FALSE(map.assign(NetId(1), false)); // conflict
  EXPECT_EQ(map.value(NetId(1)), true);
  EXPECT_EQ(map.value(NetId(2)), std::nullopt);
  EXPECT_TRUE(map.contains(NetId(1)));
  EXPECT_EQ(map.size(), 1u);
}

TEST(Propagate, ForwardThroughControllingInput) {
  Builder b;
  const NetId a = b.pi("a"), c = b.pi("c");
  const NetId y = b.gate(GateType::kNand, "y", {a, c});
  const Seed seeds[] = {{a, false}};
  const auto result = propagate(b.nl, seeds);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.map.value(y), true);
  EXPECT_EQ(result.map.value(c), std::nullopt);
}

TEST(Propagate, ForwardWhenAllInputsKnown) {
  Builder b;
  const NetId a = b.pi("a"), c = b.pi("c");
  const NetId y = b.gate(GateType::kXor, "y", {a, c});
  const Seed seeds[] = {{a, true}, {c, true}};
  const auto result = propagate(b.nl, seeds);
  EXPECT_EQ(result.map.value(y), false);
}

TEST(Propagate, ForwardCascades) {
  Builder b;
  const NetId a = b.pi("a");
  const NetId n1 = b.gate(GateType::kNot, "n1", {a});
  const NetId n2 = b.gate(GateType::kNot, "n2", {n1});
  const Seed seeds[] = {{a, true}};
  const auto result = propagate(b.nl, seeds);
  EXPECT_EQ(result.map.value(n1), false);
  EXPECT_EQ(result.map.value(n2), true);
}

TEST(Propagate, BackwardForcesAllInputs) {
  Builder b;
  const NetId a = b.pi("a"), c = b.pi("c");
  const NetId y = b.gate(GateType::kNand, "y", {a, c});
  const Seed seeds[] = {{y, false}};  // NAND out 0 -> all inputs 1
  const auto result = propagate(b.nl, seeds);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.map.value(a), true);
  EXPECT_EQ(result.map.value(c), true);
}

TEST(Propagate, BackwardSoleUnknownRule) {
  Builder b;
  const NetId a = b.pi("a"), c = b.pi("c");
  const NetId y = b.gate(GateType::kAnd, "y", {a, c});
  // y=0 with a=1 forces c=0 (the sole remaining input must control).
  const Seed seeds[] = {{y, false}, {a, true}};
  const auto result = propagate(b.nl, seeds);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.map.value(c), false);
}

TEST(Propagate, BackwardXorCompletesParity) {
  Builder b;
  const NetId a = b.pi("a"), c = b.pi("c");
  const NetId y = b.gate(GateType::kXor, "y", {a, c});
  const Seed seeds[] = {{y, true}, {a, true}};
  const auto result = propagate(b.nl, seeds);
  EXPECT_EQ(result.map.value(c), false);
}

TEST(Propagate, BackwardThroughInverterChain) {
  Builder b;
  const NetId a = b.pi("a");
  const NetId n1 = b.gate(GateType::kNot, "n1", {a});
  const NetId n2 = b.gate(GateType::kNot, "n2", {n1});
  const Seed seeds[] = {{n2, false}};
  const auto result = propagate(b.nl, seeds);
  EXPECT_EQ(result.map.value(n1), true);
  EXPECT_EQ(result.map.value(a), false);
}

TEST(Propagate, BackwardDisabledWhenRequested) {
  Builder b;
  const NetId a = b.pi("a");
  const NetId n1 = b.gate(GateType::kNot, "n1", {a});
  const Seed seeds[] = {{n1, false}};
  const auto result = propagate(b.nl, seeds, /*backward=*/false);
  EXPECT_EQ(result.map.value(a), std::nullopt);
}

TEST(Propagate, NorBackwardControlledOutputIsUninformative) {
  Builder b;
  const NetId a = b.pi("a"), c = b.pi("c");
  const NetId y = b.gate(GateType::kNor, "y", {a, c});
  const Seed seeds[] = {{y, false}};  // at least one input 1; not forced
  const auto result = propagate(b.nl, seeds);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.map.value(a), std::nullopt);
  EXPECT_EQ(result.map.value(c), std::nullopt);
}

TEST(Propagate, DetectsDirectConflict) {
  Builder b;
  const NetId a = b.pi("a");
  const NetId n1 = b.gate(GateType::kNot, "n1", {a});
  const Seed seeds[] = {{a, true}, {n1, true}};
  EXPECT_FALSE(propagate(b.nl, seeds).feasible);
}

TEST(Propagate, DetectsDeepConflict) {
  Builder b;
  const NetId a = b.pi("a"), c = b.pi("c");
  const NetId y = b.gate(GateType::kAnd, "y", {a, c});
  // y=1 forces both inputs 1; a=0 contradicts.
  const Seed seeds[] = {{y, true}, {a, false}};
  EXPECT_FALSE(propagate(b.nl, seeds).feasible);
}

TEST(Propagate, ConstGateConsistency) {
  Builder b;
  const NetId one = b.gate(GateType::kConst1, "one", {});
  const Seed bad[] = {{one, false}};
  EXPECT_FALSE(propagate(b.nl, bad).feasible);
  const Seed good[] = {{one, true}};
  EXPECT_TRUE(propagate(b.nl, good).feasible);
}

TEST(Propagate, NeverCrossesFlops) {
  Builder b;
  const NetId d = b.pi("d");
  const NetId q = b.nl.add_net("q");
  b.nl.add_gate(GateType::kDff, q, {d});
  const NetId y = b.gate(GateType::kNot, "y", {q});

  const Seed fwd[] = {{d, true}};
  EXPECT_EQ(propagate(b.nl, fwd).map.value(q), std::nullopt);

  const Seed bwd[] = {{q, true}};
  const auto result = propagate(b.nl, bwd);
  EXPECT_EQ(result.map.value(d), std::nullopt);
  EXPECT_EQ(result.map.value(y), false);  // forward from Q still works
}

TEST(Propagate, ClosureProperty) {
  // Whenever an input of a gate holds its controlling value, the output is
  // in the map too (hash_key.cpp and reduce.cpp rely on this).
  Builder b;
  const NetId a = b.pi("a"), c = b.pi("c"), d = b.pi("d");
  const NetId m = b.gate(GateType::kOr, "m", {a, c});
  const NetId y = b.gate(GateType::kAnd, "y", {m, d});
  const NetId z = b.gate(GateType::kNor, "z", {y, c});
  const Seed seeds[] = {{a, true}};
  const auto result = propagate(b.nl, seeds);
  ASSERT_TRUE(result.feasible);
  for (std::size_t g = 0; g < b.nl.gate_count(); ++g) {
    const auto& gate = b.nl.gate(b.nl.gate_id_at(g));
    const auto cv = controlling_value(gate.type);
    if (!cv) continue;
    bool has_controlling = false;
    for (NetId in : gate.inputs)
      if (result.map.value(in) == *cv) has_controlling = true;
    if (has_controlling) {
      EXPECT_TRUE(result.map.contains(gate.output))
          << "closure violated at gate " << g;
    }
  }
  (void)z;
}

TEST(Propagate, SoleUnknownFiresWhenInputArrivesAfterOutput) {
  // Regression for the ordering case: output assigned first, an input
  // assigned later completes the implication.
  Builder b;
  const NetId a = b.pi("a"), c = b.pi("c"), t = b.pi("t");
  const NetId y = b.gate(GateType::kOr, "y", {a, c});
  const NetId buf = b.gate(GateType::kBuf, "buf", {t});
  // Seeds: y=1 first (no implication yet), then a=0 via buf chain... drive
  // a directly in second seed to exercise queue ordering.
  const Seed seeds[] = {{y, true}, {a, false}};
  const auto result = propagate(b.nl, seeds);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.map.value(c), true);
  (void)buf;
}

}  // namespace
}  // namespace netrev::wordrec
