#include "wordrec/trace.h"

#include <gtest/gtest.h>

#include "itc/fig1.h"
#include "wordrec/identify.h"

namespace netrev::wordrec {
namespace {

TEST(Trace, RecordsFigure1Narrative) {
  const itc::Fig1Circuit fig = itc::build_fig1_circuit();
  IdentifyTrace trace;
  Options options;
  options.trace = &trace;
  const IdentifyResult result = identify_words(fig.netlist, options);
  ASSERT_FALSE(result.unified.empty());

  EXPECT_GT(trace.count(TraceRecord::Kind::kPartialSubgroup), 0u);
  EXPECT_GT(trace.count(TraceRecord::Kind::kControlSignals), 0u);
  EXPECT_GT(trace.count(TraceRecord::Kind::kTrial), 0u);
  EXPECT_EQ(trace.count(TraceRecord::Kind::kUnified), 1u);

  // The unified record names the word bits and the winning assignment.
  for (const TraceRecord& record : trace.records) {
    if (record.kind != TraceRecord::Kind::kUnified) continue;
    EXPECT_EQ(record.nets, fig.word_bits);
    ASSERT_EQ(record.assignment.size(), 1u);
    EXPECT_EQ(record.assignment[0].first, fig.u201);
  }
}

TEST(Trace, TrialCountMatchesStats) {
  const itc::Fig1Circuit fig = itc::build_fig1_circuit();
  IdentifyTrace trace;
  Options options;
  options.trace = &trace;
  const IdentifyResult result = identify_words(fig.netlist, options);
  EXPECT_EQ(trace.count(TraceRecord::Kind::kTrial),
            result.stats.reduction_trials);
  EXPECT_EQ(trace.count(TraceRecord::Kind::kUnified),
            result.stats.unified_subgroups);
}

TEST(Trace, NullTraceIsNoOp) {
  const itc::Fig1Circuit fig = itc::build_fig1_circuit();
  Options options;  // trace == nullptr
  EXPECT_NO_THROW(identify_words(fig.netlist, options));
}

TEST(Trace, RenderNamesNetsAndOutcomes) {
  const itc::Fig1Circuit fig = itc::build_fig1_circuit();
  IdentifyTrace trace;
  Options options;
  options.trace = &trace;
  identify_words(fig.netlist, options);
  const std::string text = render_trace(fig.netlist, trace);
  EXPECT_NE(text.find("control signals: U201 U221"), std::string::npos);
  EXPECT_NE(text.find("UNIFIED via U201=0"), std::string::npos);
  EXPECT_NE(text.find("U215 U216 U217"), std::string::npos);
}

TEST(Trace, ResultsIdenticalWithAndWithoutTrace) {
  const itc::Fig1Circuit fig = itc::build_fig1_circuit();
  IdentifyTrace trace;
  Options with;
  with.trace = &trace;
  const auto traced = identify_words(fig.netlist, with);
  const auto plain = identify_words(fig.netlist, Options{});
  EXPECT_EQ(traced.words.words.size(), plain.words.words.size());
  EXPECT_EQ(traced.used_control_signals, plain.used_control_signals);
  EXPECT_EQ(traced.stats.reduction_trials, plain.stats.reduction_trials);
}

}  // namespace
}  // namespace netrev::wordrec
