#include "wordrec/identify.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/analyzer.h"
#include "itc/family.h"
#include "wordrec/baseline.h"

namespace netrev::wordrec {
namespace {

using netlist::GateType;
using netlist::NetId;
using netlist::Netlist;

// Builds words the way the synthetic benchmarks do: operand logic first,
// root gates on consecutive lines.
struct Builder {
  Netlist nl;
  std::vector<NetId> srcs;
  int counter = 0;

  Builder() {
    for (int i = 0; i < 10; ++i) {
      srcs.push_back(nl.add_net("s" + std::to_string(i)));
      nl.mark_primary_input(srcs.back());
    }
  }

  NetId fresh(const std::string& prefix) {
    return nl.add_net(prefix + std::to_string(counter++));
  }
  NetId gate(GateType type, std::initializer_list<NetId> ins,
             const std::string& prefix = "n") {
    const NetId out = fresh(prefix);
    nl.add_gate(type, out, ins);
    return out;
  }

  // Control word of `width` bits; bits >= plain get per-bit distinct
  // dissimilar subtrees NAND-fed by a fresh internal control signal.
  struct ControlWord {
    std::vector<NetId> bits;
    NetId ctrl;
  };
  ControlWord control_word(std::size_t width, std::size_t plain) {
    ControlWord word;
    const NetId t = gate(GateType::kNand, {srcs[0], srcs[1]});
    word.ctrl = gate(GateType::kNor, {t, srcs[2]}, "ctrl");

    std::vector<std::pair<NetId, NetId>> sim(width);
    std::vector<NetId> extras(width, NetId::invalid());
    for (std::size_t i = 0; i < width; ++i) {
      sim[i].first = gate(GateType::kNand,
                          {srcs[3 + i % 4], srcs[4 + i % 4]});
      sim[i].second = gate(GateType::kNor,
                           {srcs[3 + i % 4], srcs[5 + i % 4]});
      if (i < plain) continue;
      NetId garnish;
      switch (i % 3) {
        case 0: garnish = srcs[6]; break;
        case 1: garnish = gate(GateType::kNot, {srcs[6]}); break;
        default: garnish = gate(GateType::kAnd, {srcs[6], srcs[7]}); break;
      }
      extras[i] = gate(GateType::kNand, {word.ctrl, garnish}, "e");
    }
    for (std::size_t i = 0; i < width; ++i) {
      const NetId root =
          extras[i].is_valid()
              ? gate(GateType::kNand, {sim[i].first, sim[i].second, extras[i]},
                     "bit")
              : gate(GateType::kNand, {sim[i].first, sim[i].second}, "bit");
      word.bits.push_back(root);
    }
    return word;
  }

  // Pair-controlled word: every bit's extra dies only under both signals.
  struct PairWord {
    std::vector<NetId> bits;
    NetId ctrl_a, ctrl_b;
  };
  PairWord pair_word(std::size_t width) {
    PairWord word;
    word.ctrl_a = gate(GateType::kNor, {srcs[0], srcs[1]}, "ca");
    word.ctrl_b = gate(GateType::kNor, {srcs[2], srcs[3]}, "cb");
    std::vector<std::pair<NetId, NetId>> sim(width);
    std::vector<NetId> extras(width);
    for (std::size_t i = 0; i < width; ++i) {
      sim[i].first = gate(GateType::kNand, {srcs[4 + i % 3], srcs[5 + i % 3]});
      sim[i].second = gate(GateType::kNor, {srcs[4 + i % 3], srcs[6 + i % 3]});
      const NetId ga = (i % 2 == 0)
                           ? srcs[7]
                           : gate(GateType::kNot, {srcs[7]});
      const NetId gb = (i % 2 == 0)
                           ? gate(GateType::kAnd, {srcs[8], srcs[9]})
                           : srcs[8];
      const NetId ea = gate(GateType::kNand, {word.ctrl_a, ga}, "ea");
      const NetId eb = gate(GateType::kNand, {word.ctrl_b, gb}, "eb");
      extras[i] = gate(GateType::kAnd, {ea, eb}, "e");
    }
    for (std::size_t i = 0; i < width; ++i)
      word.bits.push_back(gate(
          GateType::kNand, {sim[i].first, sim[i].second, extras[i]}, "bit"));
    return word;
  }
};

std::optional<Word> word_containing(const WordSet& words, NetId bit) {
  for (const Word& word : words.words) {
    if (word.width() < 2) continue;
    if (std::find(word.bits.begin(), word.bits.end(), bit) != word.bits.end())
      return word;
  }
  return std::nullopt;
}

bool word_covers(const WordSet& words, const std::vector<NetId>& bits) {
  const auto word = word_containing(words, bits[0]);
  if (!word) return false;
  return std::all_of(bits.begin(), bits.end(), [&](NetId bit) {
    return std::find(word->bits.begin(), word->bits.end(), bit) !=
           word->bits.end();
  });
}

TEST(Identify, UnifiesControlWordBaselineMisses) {
  Builder b;
  const auto word = b.control_word(4, 0);
  const WordSet base = identify_words_baseline(b.nl);
  EXPECT_FALSE(word_covers(base, word.bits));

  const IdentifyResult ours = identify_words(b.nl);
  EXPECT_TRUE(word_covers(ours.words, word.bits));
  ASSERT_EQ(ours.used_control_signals.size(), 1u);
  EXPECT_EQ(ours.used_control_signals[0], word.ctrl);
  EXPECT_EQ(ours.stats.unified_subgroups, 1u);
}

TEST(Identify, UnifiesPartialControlWord) {
  Builder b;
  const auto word = b.control_word(5, 3);
  const IdentifyResult ours = identify_words(b.nl);
  EXPECT_TRUE(word_covers(ours.words, word.bits));
}

TEST(Identify, RecordsWinningAssignment) {
  Builder b;
  const auto word = b.control_word(4, 0);
  const IdentifyResult ours = identify_words(b.nl);
  ASSERT_EQ(ours.unified.size(), 1u);
  ASSERT_EQ(ours.unified[0].assignment.size(), 1u);
  EXPECT_EQ(ours.unified[0].assignment[0].first, word.ctrl);
  EXPECT_EQ(ours.unified[0].assignment[0].second, false);  // NAND controlling
}

TEST(Identify, PairWordNeedsTwoSimultaneousAssignments) {
  Builder b;
  const auto word = b.pair_word(4);

  Options single;
  single.max_simultaneous_assignments = 1;
  const IdentifyResult limited = identify_words(b.nl, single);
  EXPECT_FALSE(word_covers(limited.words, word.bits));

  Options pairs;  // default 2
  const IdentifyResult ours = identify_words(b.nl, pairs);
  EXPECT_TRUE(word_covers(ours.words, word.bits));
  EXPECT_EQ(ours.used_control_signals.size(), 2u);
  ASSERT_EQ(ours.unified.size(), 1u);
  EXPECT_EQ(ours.unified[0].assignment.size(), 2u);
}

TEST(Identify, CleanWordsNeedNoControlSignals) {
  Builder b;
  const auto word = b.control_word(4, 4);  // all plain
  const IdentifyResult ours = identify_words(b.nl);
  EXPECT_TRUE(word_covers(ours.words, word.bits));
  EXPECT_TRUE(ours.used_control_signals.empty());
  EXPECT_EQ(ours.stats.reduction_trials, 0u);
}

TEST(Identify, FallbackMatchesBaselineSegmentsOnFailure) {
  // A subgroup whose dissimilar subtrees share nothing: no control signal,
  // so Ours must fall back to base-style full-match runs.
  Builder b;
  std::vector<std::pair<NetId, NetId>> sim(4);
  std::vector<NetId> extras(4, NetId::invalid());
  for (int i = 0; i < 4; ++i) {
    sim[static_cast<std::size_t>(i)].first =
        b.gate(GateType::kNand, {b.srcs[0], b.srcs[1]});
    sim[static_cast<std::size_t>(i)].second =
        b.gate(GateType::kNor, {b.srcs[0], b.srcs[2]});
  }
  // bits 2,3 carry unrelated extras (no common nets).
  extras[2] = b.gate(GateType::kXor, {b.srcs[3], b.srcs[4]});
  extras[3] = b.gate(GateType::kXnor, {b.srcs[5], b.srcs[6]});
  std::vector<NetId> bits;
  for (int i = 0; i < 4; ++i) {
    const auto& s = sim[static_cast<std::size_t>(i)];
    bits.push_back(extras[static_cast<std::size_t>(i)].is_valid()
                       ? b.gate(GateType::kNand,
                                {s.first, s.second,
                                 extras[static_cast<std::size_t>(i)]},
                                "bit")
                       : b.gate(GateType::kNand, {s.first, s.second}, "bit"));
  }

  const IdentifyResult ours = identify_words(b.nl);
  // bits 0-1 form a word; 2 and 3 end up singletons — same as baseline.
  const auto word = word_containing(ours.words, bits[0]);
  ASSERT_TRUE(word.has_value());
  EXPECT_EQ(word->bits, (std::vector<NetId>{bits[0], bits[1]}));
  EXPECT_FALSE(word_containing(ours.words, bits[2]).has_value());
  EXPECT_EQ(ours.stats.unified_subgroups, 0u);
}

TEST(Identify, PartitionCoversEveryGateOutput) {
  Builder b;
  b.control_word(4, 0);
  b.pair_word(3);
  const IdentifyResult ours = identify_words(b.nl);
  const auto index = ours.words.index_of_net();
  std::size_t total = 0;
  for (const Word& word : ours.words.words) total += word.width();
  EXPECT_EQ(total, b.nl.gate_count());
  for (std::size_t g = 0; g < b.nl.gate_count(); ++g)
    EXPECT_TRUE(index.contains(b.nl.gate(b.nl.gate_id_at(g)).output));
}

TEST(Identify, StatsAreCoherent) {
  Builder b;
  b.control_word(4, 0);
  const IdentifyResult ours = identify_words(b.nl);
  EXPECT_GT(ours.stats.groups, 0u);
  EXPECT_GE(ours.stats.subgroups, ours.stats.partial_subgroups);
  EXPECT_GE(ours.stats.reduction_trials, ours.stats.unified_subgroups);
  EXPECT_GT(ours.stats.control_signal_candidates, 0u);
}

TEST(Identify, TrialBudgetCapsSearch) {
  Builder b;
  b.pair_word(4);
  Options tight;
  tight.max_assignment_trials_per_subgroup = 1;  // only the first single
  const IdentifyResult ours = identify_words(b.nl, tight);
  EXPECT_LE(ours.stats.reduction_trials, 2u);  // one per partial subgroup max
}

TEST(Identify, EmptyNetlist) {
  const IdentifyResult ours = identify_words(Netlist{});
  EXPECT_TRUE(ours.words.words.empty());
  EXPECT_TRUE(ours.used_control_signals.empty());
}

TEST(Identify, CombinationalCycleAbortsWithStructuralDiagnostic) {
  // The mandatory pre-pass must reject a cyclic netlist with a diagnostic
  // naming the loop instead of handing it to levelization/cone hashing.
  Netlist nl;
  const NetId a = nl.add_net("a");
  nl.mark_primary_input(a);
  const NetId x = nl.add_net("x");
  const NetId y = nl.add_net("y");
  nl.add_gate(GateType::kAnd, x, {a, y});
  nl.add_gate(GateType::kOr, y, {a, x});
  nl.mark_primary_output(y);

  try {
    identify_words(nl);
    FAIL() << "expected analysis::StructuralDefectError";
  } catch (const analysis::StructuralDefectError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("combinational cycle"), std::string::npos) << what;
    EXPECT_NE(what.find("x -> y -> x"), std::string::npos) << what;
  }
}

TEST(Identify, BrokenCycleRunsToCompletion) {
  // The documented recovery: break_combinational_cycles then identify.
  Netlist nl;
  const NetId a = nl.add_net("a");
  nl.mark_primary_input(a);
  const NetId x = nl.add_net("x");
  const NetId y = nl.add_net("y");
  nl.add_gate(GateType::kAnd, x, {a, y});
  nl.add_gate(GateType::kOr, y, {a, x});
  nl.mark_primary_output(y);

  diag::Diagnostics diags;
  const analysis::CycleBreakResult fixed =
      analysis::break_combinational_cycles(nl, diags);
  EXPECT_EQ(fixed.cycles_broken, 1u);
  EXPECT_NO_THROW(identify_words(fixed.netlist));
}

TEST(Identify, DataflowPruningLeavesBenchmarkResultsUnchanged) {
  // The synthetic benchmarks contain no derived constants, so --use-dataflow
  // must not change anything: same words, same control signals, same stats.
  // (identify_words computes the constant mask on demand here, exercising
  // the standalone path the Session's cached stage bypasses.)
  const Netlist nl = itc::build_benchmark("b03s").netlist;
  const IdentifyResult base = identify_words(nl);
  Options pruning;
  pruning.use_dataflow = true;
  const IdentifyResult pruned = identify_words(nl, pruning);

  ASSERT_EQ(base.words.words.size(), pruned.words.words.size());
  for (std::size_t i = 0; i < base.words.words.size(); ++i)
    EXPECT_EQ(base.words.words[i].bits, pruned.words.words[i].bits);
  EXPECT_EQ(base.used_control_signals, pruned.used_control_signals);
  EXPECT_EQ(base.stats.control_signal_candidates,
            pruned.stats.control_signal_candidates);
  EXPECT_EQ(base.stats.reduction_trials, pruned.stats.reduction_trials);
  EXPECT_EQ(base.stats.unified_subgroups, pruned.stats.unified_subgroups);
}

}  // namespace
}  // namespace netrev::wordrec
