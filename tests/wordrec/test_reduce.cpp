#include "wordrec/reduce.h"

#include <gtest/gtest.h>

#include "netlist/validate.h"
#include "sim/equivalence.h"
#include "wordrec/hash_key.h"

namespace netrev::wordrec {
namespace {

using netlist::GateType;
using netlist::NetId;
using netlist::Netlist;

struct Builder {
  Netlist nl;
  Options options;

  NetId pi(const std::string& name) {
    const NetId id = nl.add_net(name);
    nl.mark_primary_input(id);
    return id;
  }
  NetId gate(GateType type, const std::string& name,
             std::initializer_list<NetId> ins) {
    const NetId id = nl.add_net(name);
    nl.add_gate(type, id, ins);
    return id;
  }
};

using Seed = std::pair<NetId, bool>;

struct Fixture : Builder {
  NetId ctrl, x, y, e, root;

  Fixture() {
    ctrl = pi("ctrl");
    x = pi("x");
    y = pi("y");
    const NetId s1 = gate(GateType::kAnd, "s1", {x, y});
    const NetId s2 = gate(GateType::kOr, "s2", {x, y});
    e = gate(GateType::kNand, "e", {ctrl, x});
    root = gate(GateType::kNand, "root", {s1, s2, e});
    nl.mark_primary_output(root);
  }
};

TEST(Reduce, RemovesAssignedGatesAndNets) {
  Fixture f;
  const Seed seeds[] = {{f.ctrl, false}};
  const auto prop = propagate(f.nl, seeds);
  ASSERT_TRUE(prop.feasible);
  const Netlist reduced = materialize_reduction(f.nl, prop.map, f.options);
  // ctrl and e vanish; root sheds the e input.
  EXPECT_FALSE(reduced.find_net("ctrl").has_value());
  EXPECT_FALSE(reduced.find_net("e").has_value());
  const auto root = reduced.find_net("root");
  ASSERT_TRUE(root.has_value());
  const auto drv = reduced.driver_of(*root);
  ASSERT_TRUE(drv.has_value());
  EXPECT_EQ(reduced.gate(*drv).type, GateType::kNand);
  EXPECT_EQ(reduced.gate(*drv).inputs.size(), 2u);
}

TEST(Reduce, ReducedNetlistValidates) {
  Fixture f;
  const Seed seeds[] = {{f.ctrl, false}};
  const auto prop = propagate(f.nl, seeds);
  const Netlist reduced = materialize_reduction(f.nl, prop.map, f.options);
  const auto report = netlist::validate(reduced);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(Reduce, SingleLiveInputBecomesBufferOrInverter) {
  Builder b;
  const NetId a = b.pi("a"), en = b.pi("en");
  const NetId y_and = b.gate(GateType::kAnd, "y_and", {a, en});
  const NetId y_nand = b.gate(GateType::kNand, "y_nand", {a, en});
  b.nl.mark_primary_output(y_and);
  b.nl.mark_primary_output(y_nand);
  // en = 1 is non-controlling for both.
  const Seed seeds[] = {{en, true}};
  const auto prop = propagate(b.nl, seeds);
  const Netlist reduced = materialize_reduction(b.nl, prop.map, b.options);
  const auto and_drv = reduced.driver_of(*reduced.find_net("y_and"));
  EXPECT_EQ(reduced.gate(*and_drv).type, GateType::kBuf);
  const auto nand_drv = reduced.driver_of(*reduced.find_net("y_nand"));
  EXPECT_EQ(reduced.gate(*nand_drv).type, GateType::kNot);
}

TEST(Reduce, XorParityFlipsType) {
  Builder b;
  const NetId a = b.pi("a"), c = b.pi("c"), k = b.pi("k");
  const NetId y = b.gate(GateType::kXor, "y", {a, c, k});
  b.nl.mark_primary_output(y);
  const Seed seeds[] = {{k, true}};
  const auto prop = propagate(b.nl, seeds);
  const Netlist reduced = materialize_reduction(b.nl, prop.map, b.options);
  const auto drv = reduced.driver_of(*reduced.find_net("y"));
  EXPECT_EQ(reduced.gate(*drv).type, GateType::kXnor);
}

TEST(Reduce, DeadLogicSweptWhenEnabled) {
  Fixture f;
  // Add a cone that only feeds e's siblings... give ctrl a driver cone that
  // dies with it.
  Builder b;
  const NetId p1 = b.pi("p1"), p2 = b.pi("p2"), x = b.pi("x");
  const NetId t = b.gate(GateType::kNand, "t", {p1, p2});
  const NetId ctrl = b.gate(GateType::kNor, "ctrl", {t, p1});
  const NetId e = b.gate(GateType::kNand, "e", {ctrl, x});
  const NetId root = b.gate(GateType::kAnd, "root", {e, x});
  b.nl.mark_primary_output(root);

  const Seed seeds[] = {{ctrl, false}};
  const auto prop = propagate(b.nl, seeds);
  const Netlist swept = materialize_reduction(b.nl, prop.map, b.options);
  EXPECT_FALSE(swept.find_net("t").has_value());  // floated and swept

  Options keep = b.options;
  keep.sweep_dead_logic = false;
  const Netlist kept = materialize_reduction(b.nl, prop.map, keep);
  EXPECT_TRUE(kept.find_net("t").has_value());
  (void)f;
}

TEST(Reduce, FlopWithConstantDGetsConstDriver) {
  Builder b;
  const NetId en = b.pi("en"), x = b.pi("x");
  const NetId d = b.gate(GateType::kAnd, "d", {en, x});
  const NetId q = b.nl.add_net("q_reg");
  b.nl.add_gate(GateType::kDff, q, {d});
  const NetId y = b.gate(GateType::kNot, "y", {q});
  b.nl.mark_primary_output(y);
  const Seed seeds[] = {{en, false}};  // d becomes constant 0
  const auto prop = propagate(b.nl, seeds);
  const Netlist reduced = materialize_reduction(b.nl, prop.map, b.options);
  const auto report = netlist::validate(reduced);
  EXPECT_TRUE(report.ok()) << report.to_string();
  const auto q_net = reduced.find_net("q_reg");
  ASSERT_TRUE(q_net.has_value());
  const auto flop = reduced.driver_of(*q_net);
  ASSERT_TRUE(flop.has_value());
  const NetId new_d = reduced.gate(*flop).inputs[0];
  const auto const_drv = reduced.driver_of(new_d);
  ASSERT_TRUE(const_drv.has_value());
  EXPECT_EQ(reduced.gate(*const_drv).type, GateType::kConst0);
}

TEST(Reduce, PreexistingConstantGatesSurvive) {
  // Regression (found by fuzzing): zero-input constant gates must not trip
  // the closure assertion when untouched by the assignment.
  Builder b;
  const NetId one = b.gate(GateType::kConst1, "one", {});
  const NetId x = b.pi("x"), en = b.pi("en");
  const NetId y = b.gate(GateType::kXor, "y", {one, x});
  const NetId z = b.gate(GateType::kAnd, "z", {y, en});
  b.nl.mark_primary_output(z);
  const Seed seeds[] = {{en, true}};  // unrelated to the constant
  const auto prop = propagate(b.nl, seeds);
  const Netlist reduced = materialize_reduction(b.nl, prop.map, b.options);
  EXPECT_TRUE(netlist::validate(reduced).ok());
  const auto kept = reduced.find_net("one");
  ASSERT_TRUE(kept.has_value());
  EXPECT_EQ(reduced.gate(*reduced.driver_of(*kept)).type, GateType::kConst1);
}

TEST(Reduce, EmptyAssignmentIsIdentityModuloDeadSweep) {
  Fixture f;
  const Netlist reduced = materialize_reduction(f.nl, AssignmentMap{}, f.options);
  EXPECT_EQ(reduced.gate_count(), f.nl.gate_count());
  EXPECT_EQ(reduced.net_count(), f.nl.net_count());
}

// The keystone property: for every net surviving the reduction, the
// materialized netlist's structure matches the virtual-reduction hash keys.
TEST(Reduce, VirtualAndMaterializedKeysAgree) {
  Fixture f;
  const Seed seeds[] = {{f.ctrl, false}};
  const auto prop = propagate(f.nl, seeds);
  const Netlist reduced = materialize_reduction(f.nl, prop.map, f.options);

  const ConeHasher virtual_hasher(f.nl, f.options);
  const ConeHasher reduced_hasher(reduced, f.options);
  for (std::size_t i = 0; i < reduced.net_count(); ++i) {
    const NetId red_id = reduced.net_id_at(i);
    const auto orig = f.nl.find_net(reduced.net(red_id).name);
    if (!orig) continue;  // fresh constant feeders
    EXPECT_EQ(virtual_hasher.subtree_key(*orig, 3, &prop.map),
              reduced_hasher.subtree_key(red_id, 3))
        << "key mismatch on " << reduced.net(red_id).name;
  }
}

// And behaviourally: reduced == original whenever the assumption holds.
TEST(Reduce, BehaviourPreservedUnderAssumption) {
  Builder b;
  const NetId p1 = b.pi("p1"), p2 = b.pi("p2");
  const NetId x = b.pi("x"), y = b.pi("y");
  const NetId ctrl = b.gate(GateType::kNor, "ctrl", {p1, p2});
  const NetId e = b.gate(GateType::kNand, "e", {ctrl, x});
  const NetId s = b.gate(GateType::kXor, "s", {x, y});
  const NetId root = b.gate(GateType::kNand, "root", {s, e});
  b.nl.mark_primary_output(root);

  const Seed seeds[] = {{ctrl, false}};
  const auto prop = propagate(b.nl, seeds);
  const Netlist reduced = materialize_reduction(b.nl, prop.map, b.options);
  const auto check =
      sim::check_reduction_equivalence(b.nl, reduced, seeds, 500, 99);
  EXPECT_GT(check.vectors_applicable, 0u);
  EXPECT_TRUE(check.ok()) << check.mismatches << " mismatches";
}

}  // namespace
}  // namespace netrev::wordrec
