#include "wordrec/hash_key.h"

#include <gtest/gtest.h>

#include "wordrec/assignment.h"

namespace netrev::wordrec {
namespace {

using netlist::GateType;
using netlist::NetId;
using netlist::Netlist;

struct Builder {
  Netlist nl;
  Options options;

  NetId pi(const std::string& name) {
    const NetId id = nl.add_net(name);
    nl.mark_primary_input(id);
    return id;
  }
  NetId gate(GateType type, const std::string& name,
             std::initializer_list<NetId> ins) {
    const NetId id = nl.add_net(name);
    nl.add_gate(type, id, ins);
    return id;
  }
};

TEST(HashKey, LeafKinds) {
  Builder b;
  const NetId a = b.pi("a");
  const NetId q = b.nl.add_net("q");
  const NetId d = b.pi("d");
  b.nl.add_gate(GateType::kDff, q, {d});
  const NetId c0 = b.gate(GateType::kConst0, "c0", {});

  const ConeHasher hasher(b.nl, b.options);
  EXPECT_EQ(hasher.subtree_key(a, 3), "p");
  EXPECT_EQ(hasher.subtree_key(q, 3), "f");
  EXPECT_EQ(hasher.subtree_key(c0, 3), "0");
}

TEST(HashKey, IndistinctLeafMode) {
  Builder b;
  b.options.distinguish_leaf_kinds = false;
  const NetId a = b.pi("a");
  const NetId q = b.nl.add_net("q");
  const NetId d = b.pi("d");
  b.nl.add_gate(GateType::kDff, q, {d});
  const ConeHasher hasher(b.nl, b.options);
  EXPECT_EQ(hasher.subtree_key(a, 3), "*");
  EXPECT_EQ(hasher.subtree_key(q, 3), "*");
}

TEST(HashKey, PostOrderWithSortedChildren) {
  Builder b;
  const NetId a = b.pi("a");
  const NetId q = b.nl.add_net("q");
  b.nl.add_gate(GateType::kDff, q, {b.pi("d")});
  // NAND(q, a) and NAND(a, q) must hash identically (fanins sorted).
  const NetId y1 = b.gate(GateType::kNand, "y1", {q, a});
  const NetId y2 = b.gate(GateType::kNand, "y2", {a, q});
  const ConeHasher hasher(b.nl, b.options);
  EXPECT_EQ(hasher.subtree_key(y1, 3), hasher.subtree_key(y2, 3));
  EXPECT_EQ(hasher.subtree_key(y1, 3), "(fp)N");
}

TEST(HashKey, DepthCutsExpansion) {
  Builder b;
  const NetId a = b.pi("a");
  const NetId n1 = b.gate(GateType::kNot, "n1", {a});
  const NetId n2 = b.gate(GateType::kNot, "n2", {n1});
  const NetId n3 = b.gate(GateType::kNot, "n3", {n2});
  const ConeHasher hasher(b.nl, b.options);
  EXPECT_EQ(hasher.subtree_key(n3, 0), "_");
  EXPECT_EQ(hasher.subtree_key(n3, 1), "(_)I");
  EXPECT_EQ(hasher.subtree_key(n3, 2), "((_)I)I");
  EXPECT_EQ(hasher.subtree_key(n3, 3), "(((p)I)I)I");
}

TEST(HashKey, StructureDistinguishesGateTypes) {
  Builder b;
  const NetId a = b.pi("a");
  const NetId c = b.pi("c");
  const NetId y1 = b.gate(GateType::kAnd, "y1", {a, c});
  const NetId y2 = b.gate(GateType::kOr, "y2", {a, c});
  const ConeHasher hasher(b.nl, b.options);
  EXPECT_NE(hasher.subtree_key(y1, 2), hasher.subtree_key(y2, 2));
}

TEST(HashKey, NameIndependence) {
  // Two isomorphic cones with different net names hash identically.
  Builder b;
  const NetId a1 = b.pi("alpha"), b1 = b.pi("beta");
  const NetId a2 = b.pi("gamma"), b2 = b.pi("delta");
  const NetId m1 = b.gate(GateType::kXor, "m1", {a1, b1});
  const NetId m2 = b.gate(GateType::kXor, "m2", {a2, b2});
  const NetId y1 = b.gate(GateType::kNand, "y1", {m1, a1});
  const NetId y2 = b.gate(GateType::kNand, "y2", {m2, a2});
  const ConeHasher hasher(b.nl, b.options);
  EXPECT_EQ(hasher.subtree_key(y1, 3), hasher.subtree_key(y2, 3));
}

TEST(Signature, RootTypeAndSortedSubtrees) {
  Builder b;
  const NetId a = b.pi("a"), c = b.pi("c");
  const NetId s1 = b.gate(GateType::kOr, "s1", {a, c});
  const NetId s2 = b.gate(GateType::kAnd, "s2", {a, c});
  const NetId bit = b.gate(GateType::kNand, "bit", {s1, s2});
  const ConeHasher hasher(b.nl, b.options);
  const BitSignature sig = hasher.signature(bit);
  ASSERT_TRUE(sig.root_type.has_value());
  EXPECT_EQ(*sig.root_type, GateType::kNand);
  ASSERT_EQ(sig.subtrees.size(), 2u);
  EXPECT_LE(sig.subtrees[0].key, sig.subtrees[1].key);
}

TEST(Signature, UndrivenAndFlopRoots) {
  Builder b;
  const NetId a = b.pi("a");
  const NetId q = b.nl.add_net("q");
  b.nl.add_gate(GateType::kDff, q, {a});
  const ConeHasher hasher(b.nl, b.options);
  EXPECT_FALSE(hasher.signature(a).root_type.has_value());
  const BitSignature flop_sig = hasher.signature(q);
  ASSERT_TRUE(flop_sig.root_type.has_value());
  EXPECT_EQ(*flop_sig.root_type, GateType::kDff);
  EXPECT_TRUE(flop_sig.subtrees.empty());
}

TEST(Signature, StructuralEqualityRules) {
  Builder b;
  const NetId a = b.pi("a"), c = b.pi("c");
  const NetId y1 = b.gate(GateType::kNand, "y1", {a, c});
  const NetId y2 = b.gate(GateType::kNand, "y2", {c, a});
  const NetId y3 = b.gate(GateType::kNor, "y3", {a, c});
  const ConeHasher hasher(b.nl, b.options);
  EXPECT_TRUE(hasher.signature(y1).structurally_equal(hasher.signature(y2)));
  EXPECT_FALSE(hasher.signature(y1).structurally_equal(hasher.signature(y3)));
  // Signatures without a root never match, even against themselves.
  EXPECT_FALSE(hasher.signature(a).structurally_equal(hasher.signature(a)));
}

// --- virtual reduction ----------------------------------------------------

struct ReductionFixture : Builder {
  NetId ctrl, x, y, e, bit_garnished, bit_plain;

  ReductionFixture() {
    ctrl = pi("ctrl");
    x = pi("x");
    y = pi("y");
    const NetId s1g = gate(GateType::kAnd, "s1g", {x, y});
    const NetId s2g = gate(GateType::kOr, "s2g", {x, y});
    e = gate(GateType::kNand, "e", {ctrl, x});
    bit_garnished = gate(GateType::kNand, "bg", {s1g, s2g, e});
    const NetId s1p = gate(GateType::kAnd, "s1p", {x, y});
    const NetId s2p = gate(GateType::kOr, "s2p", {x, y});
    bit_plain = gate(GateType::kNand, "bp", {s1p, s2p});
  }
};

TEST(VirtualReduction, DropsKilledSubtreeAndCollapsesRoot) {
  ReductionFixture f;
  const ConeHasher hasher(f.nl, f.options);
  // Unreduced: garnished differs from plain.
  EXPECT_FALSE(hasher.signature(f.bit_garnished)
                   .structurally_equal(hasher.signature(f.bit_plain)));
  // ctrl=0 kills e (NAND controlling input) and the root drops it.
  const std::pair<NetId, bool> seeds[] = {{f.ctrl, false}};
  const auto prop = propagate(f.nl, seeds);
  ASSERT_TRUE(prop.feasible);
  EXPECT_TRUE(
      hasher.signature(f.bit_garnished, &prop.map)
          .structurally_equal(hasher.signature(f.bit_plain, &prop.map)));
}

TEST(VirtualReduction, AssignedBitHasNoSignature) {
  ReductionFixture f;
  const ConeHasher hasher(f.nl, f.options);
  const std::pair<NetId, bool> seeds[] = {{f.bit_plain, true}};
  const auto prop = propagate(f.nl, seeds);
  ASSERT_TRUE(prop.feasible);
  EXPECT_FALSE(hasher.signature(f.bit_plain, &prop.map).root_type.has_value());
}

TEST(VirtualReduction, SingleLiveInputCollapsesToInverterForNand) {
  Builder b;
  const NetId a = b.pi("a"), c = b.pi("c");
  const NetId y = b.gate(GateType::kNand, "y", {a, c});
  const NetId root = b.gate(GateType::kAnd, "root", {y, b.pi("z")});
  const ConeHasher hasher(b.nl, b.options);
  // Assign c=1 (non-controlling for NAND): y's subtree becomes NOT(a).
  AssignmentMap map;
  map.assign(c, true);
  EXPECT_EQ(hasher.subtree_key(y, 3, &map), "(p)I");
  const BitSignature sig = hasher.signature(root, &map);
  ASSERT_TRUE(sig.root_type.has_value());
  EXPECT_EQ(*sig.root_type, GateType::kAnd);
}

TEST(VirtualReduction, XorParityAbsorption) {
  Builder b;
  const NetId a = b.pi("a"), c = b.pi("c"), d = b.pi("d");
  const NetId y = b.gate(GateType::kXor, "y", {a, c, d});
  const ConeHasher hasher(b.nl, b.options);
  AssignmentMap drop0;
  drop0.assign(d, false);
  EXPECT_EQ(hasher.subtree_key(y, 2, &drop0), "(pp)X");
  AssignmentMap drop1;
  drop1.assign(d, true);
  EXPECT_EQ(hasher.subtree_key(y, 2, &drop1), "(pp)Y");  // flips to XNOR
  AssignmentMap drop_two;
  drop_two.assign(d, true);
  drop_two.assign(c, false);
  EXPECT_EQ(hasher.subtree_key(y, 2, &drop_two), "(p)I");  // XOR(a,1) = NOT a
}

TEST(VirtualReduction, RootTypeCanCollapse) {
  Builder b;
  const NetId a = b.pi("a"), c = b.pi("c");
  const NetId s = b.gate(GateType::kAnd, "s", {a, c});
  const NetId bit = b.gate(GateType::kNand, "bit", {s, b.pi("en")});
  const ConeHasher hasher(b.nl, b.options);
  AssignmentMap map;
  map.assign(*b.nl.find_net("en"), true);
  const BitSignature sig = hasher.signature(bit, &map);
  ASSERT_TRUE(sig.root_type.has_value());
  EXPECT_EQ(*sig.root_type, GateType::kNot);  // NAND with one live input
  ASSERT_EQ(sig.subtrees.size(), 1u);
  EXPECT_EQ(sig.subtrees[0].root, s);
}

}  // namespace
}  // namespace netrev::wordrec
