#include "wordrec/funcheck.h"

#include <gtest/gtest.h>

namespace netrev::wordrec {
namespace {

using netlist::GateType;
using netlist::NetId;
using netlist::Netlist;

struct Builder {
  Netlist nl;

  NetId pi(const std::string& name) {
    const NetId id = nl.add_net(name);
    nl.mark_primary_input(id);
    return id;
  }
  NetId gate(GateType type, const std::string& name,
             std::initializer_list<NetId> ins) {
    const NetId id = nl.add_net(name);
    nl.add_gate(type, id, ins);
    return id;
  }
  Word word_of(std::initializer_list<NetId> bits) {
    Word word;
    word.bits = bits;
    return word;
  }
};

TEST(Funcheck, CleanIndependentBits) {
  Builder b;
  const NetId x0 = b.pi("x0"), x1 = b.pi("x1"), x2 = b.pi("x2"), s = b.pi("s");
  const NetId b0 = b.gate(GateType::kAnd, "b0", {x0, s});
  const NetId b1 = b.gate(GateType::kAnd, "b1", {x1, s});
  const NetId b2 = b.gate(GateType::kAnd, "b2", {x2, s});
  const auto report = functional_sanity(b.nl, b.word_of({b0, b1, b2}), 128, 1);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.vectors, 128u);
}

TEST(Funcheck, DetectsStuckBit) {
  Builder b;
  const NetId x = b.pi("x"), y = b.pi("y");
  const NetId live = b.gate(GateType::kXor, "live", {x, y});
  const NetId nx = b.gate(GateType::kNot, "nx", {x});
  const NetId stuck = b.gate(GateType::kAnd, "stuck", {x, nx});  // always 0
  const auto report = functional_sanity(b.nl, b.word_of({live, stuck}), 128, 2);
  ASSERT_EQ(report.stuck_bits.size(), 1u);
  EXPECT_EQ(report.stuck_bits[0], 1u);
  EXPECT_FALSE(report.clean());
}

TEST(Funcheck, DetectsDuplicateBits) {
  Builder b;
  const NetId x = b.pi("x"), y = b.pi("y");
  const NetId a = b.gate(GateType::kAnd, "a", {x, y});
  const NetId a_copy = b.gate(GateType::kBuf, "a_copy", {a});
  const NetId other = b.gate(GateType::kXor, "other", {x, y});
  const auto report =
      functional_sanity(b.nl, b.word_of({a, a_copy, other}), 128, 3);
  ASSERT_EQ(report.duplicate_pairs.size(), 1u);
  EXPECT_EQ(report.duplicate_pairs[0], (std::pair<std::size_t, std::size_t>{0, 1}));
}

TEST(Funcheck, DetectsComplementaryBits) {
  Builder b;
  const NetId x = b.pi("x"), y = b.pi("y");
  const NetId a = b.gate(GateType::kXor, "a", {x, y});
  const NetId na = b.gate(GateType::kNot, "na", {a});
  const auto report = functional_sanity(b.nl, b.word_of({a, na}), 128, 4);
  ASSERT_EQ(report.complementary_pairs.size(), 1u);
  EXPECT_TRUE(report.duplicate_pairs.empty());
}

TEST(Funcheck, StuckPairsNotDoubleReported) {
  Builder b;
  const NetId x = b.pi("x");
  const NetId nx = b.gate(GateType::kNot, "nx", {x});
  const NetId zero1 = b.gate(GateType::kAnd, "zero1", {x, nx});
  const NetId zero2 = b.gate(GateType::kNor, "zero2", {x, nx});
  const auto report =
      functional_sanity(b.nl, b.word_of({zero1, zero2}), 64, 5);
  EXPECT_EQ(report.stuck_bits.size(), 2u);
  EXPECT_TRUE(report.duplicate_pairs.empty());
}

TEST(Funcheck, DeterministicForSeed) {
  Builder b;
  const NetId x = b.pi("x"), y = b.pi("y");
  const NetId a = b.gate(GateType::kXor, "a", {x, y});
  const NetId c = b.gate(GateType::kAnd, "c", {x, y});
  const auto r1 = functional_sanity(b.nl, b.word_of({a, c}), 64, 7);
  const auto r2 = functional_sanity(b.nl, b.word_of({a, c}), 64, 7);
  EXPECT_EQ(r1.stuck_bits, r2.stuck_bits);
  EXPECT_EQ(r1.duplicate_pairs, r2.duplicate_pairs);
}

TEST(Funcheck, EmptyWordAndZeroVectors) {
  Builder b;
  EXPECT_TRUE(functional_sanity(b.nl, Word{}, 64, 1).clean());
  const NetId x = b.pi("x");
  const NetId a = b.gate(GateType::kBuf, "a", {x});
  EXPECT_TRUE(functional_sanity(b.nl, b.word_of({a}), 0, 1).clean());
}

TEST(Funcheck, SuspiciousWordsFiltersWordSet) {
  Builder b;
  const NetId x = b.pi("x"), y = b.pi("y");
  const NetId g0 = b.gate(GateType::kXor, "g0", {x, y});
  const NetId g1 = b.gate(GateType::kAnd, "g1", {x, y});
  const NetId nx = b.gate(GateType::kNot, "nx", {x});
  const NetId stuck = b.gate(GateType::kAnd, "stuck", {x, nx});

  WordSet words;
  words.words.push_back(b.word_of({g0, g1}));      // clean
  words.words.push_back(b.word_of({g1, stuck}));   // stuck bit
  words.words.push_back(b.word_of({nx}));          // singleton: skipped
  const auto flagged = suspicious_words(b.nl, words, 128, 11);
  EXPECT_EQ(flagged, (std::vector<std::size_t>{1}));
}

}  // namespace
}  // namespace netrev::wordrec
