#include "wordrec/matching.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/contracts.h"

namespace netrev::wordrec {
namespace {

using netlist::GateType;
using netlist::NetId;

BitSignature make_sig(GateType root, std::vector<std::pair<std::string, int>> keys) {
  BitSignature sig;
  sig.root_type = root;
  for (auto& [key, id] : keys)
    sig.subtrees.push_back(SubtreeKey{key, NetId(static_cast<std::uint32_t>(id))});
  std::sort(sig.subtrees.begin(), sig.subtrees.end(),
            [](const SubtreeKey& a, const SubtreeKey& b) {
              return a.key < b.key || (a.key == b.key && a.root < b.root);
            });
  return sig;
}

TEST(CompareBits, FullMatch) {
  const auto a = make_sig(GateType::kNand, {{"(pp)N", 1}, {"(ff)A", 2}});
  const auto b = make_sig(GateType::kNand, {{"(ff)A", 7}, {"(pp)N", 8}});
  const BitMatch match = compare_bits(a, b);
  EXPECT_TRUE(match.comparable);
  EXPECT_TRUE(match.full);
  EXPECT_FALSE(match.partial);
  EXPECT_TRUE(match.dissimilar_a.empty());
  EXPECT_TRUE(match.dissimilar_b.empty());
}

TEST(CompareBits, PartialMatchReportsDissimilarRoots) {
  const auto a = make_sig(GateType::kNand, {{"(pp)N", 1}, {"(ff)A", 2}});
  const auto b = make_sig(GateType::kNand, {{"(pp)N", 7}, {"(pp)X", 9}});
  const BitMatch match = compare_bits(a, b);
  EXPECT_FALSE(match.full);
  EXPECT_TRUE(match.partial);
  ASSERT_EQ(match.dissimilar_a.size(), 1u);
  EXPECT_EQ(match.dissimilar_a[0], NetId(2));  // "(ff)A"
  ASSERT_EQ(match.dissimilar_b.size(), 1u);
  EXPECT_EQ(match.dissimilar_b[0], NetId(9));  // "(pp)X"
}

TEST(CompareBits, NoSharedKeysIsNeitherFullNorPartial) {
  const auto a = make_sig(GateType::kNand, {{"(pp)N", 1}});
  const auto b = make_sig(GateType::kNand, {{"(pp)X", 2}});
  const BitMatch match = compare_bits(a, b);
  EXPECT_TRUE(match.comparable);
  EXPECT_FALSE(match.full);
  EXPECT_FALSE(match.partial);
}

TEST(CompareBits, ExtraSubtreeBreaksFullMatch) {
  const auto a = make_sig(GateType::kNand, {{"(pp)N", 1}});
  const auto b = make_sig(GateType::kNand, {{"(pp)N", 2}, {"(pp)O", 3}});
  const BitMatch match = compare_bits(a, b);
  EXPECT_FALSE(match.full);
  EXPECT_TRUE(match.partial);
  EXPECT_TRUE(match.dissimilar_a.empty());
  ASSERT_EQ(match.dissimilar_b.size(), 1u);
  EXPECT_EQ(match.dissimilar_b[0], NetId(3));
}

TEST(CompareBits, DuplicateKeysMatchAsMultiset) {
  const auto a = make_sig(GateType::kAnd, {{"p", 1}, {"p", 2}});
  const auto b = make_sig(GateType::kAnd, {{"p", 3}, {"p", 4}, {"p", 5}});
  const BitMatch match = compare_bits(a, b);
  EXPECT_TRUE(match.partial);
  EXPECT_EQ(match.dissimilar_a.size(), 0u);
  EXPECT_EQ(match.dissimilar_b.size(), 1u);  // the unmatched third copy
}

TEST(CompareBits, RootTypeMismatchNeverMatches) {
  const auto a = make_sig(GateType::kNand, {{"(pp)N", 1}});
  const auto b = make_sig(GateType::kNor, {{"(pp)N", 2}});
  const BitMatch match = compare_bits(a, b);
  EXPECT_TRUE(match.comparable);
  EXPECT_FALSE(match.full);
  EXPECT_FALSE(match.partial);
  EXPECT_EQ(match.dissimilar_a.size(), 1u);
  EXPECT_EQ(match.dissimilar_b.size(), 1u);
}

TEST(CompareBits, IncomparableWhenRootMissing) {
  BitSignature empty;
  const auto b = make_sig(GateType::kNand, {{"p", 1}});
  EXPECT_FALSE(compare_bits(empty, b).comparable);
  EXPECT_FALSE(compare_bits(b, empty).comparable);
}

TEST(CompareBits, EmptySubtreeListsNeverFullMatch) {
  // Two flop-driven bits: comparable but no structural evidence.
  BitSignature a, b;
  a.root_type = GateType::kDff;
  b.root_type = GateType::kDff;
  const BitMatch match = compare_bits(a, b);
  EXPECT_FALSE(match.full);
  EXPECT_FALSE(match.partial);
}

// --- subgroup formation ----------------------------------------------------

TEST(Subgroups, FullChainStaysOneSubgroup) {
  const auto sig = make_sig(GateType::kNand, {{"(pp)N", 1}});
  std::vector<NetId> group{NetId(10), NetId(11), NetId(12)};
  std::vector<BitSignature> sigs{sig, sig, sig};
  const auto subgroups = form_subgroups(group, sigs);
  ASSERT_EQ(subgroups.size(), 1u);
  EXPECT_EQ(subgroups[0].bits, group);
  EXPECT_TRUE(subgroups[0].fully_similar);
  EXPECT_FALSE(subgroups[0].has_dissimilar());
}

TEST(Subgroups, PartialChainRecordsDissimilar) {
  const auto common = SubtreeKey{"(pp)N", NetId(1)};
  auto a = make_sig(GateType::kNand, {{"(pp)N", 1}, {"(pp)A", 2}});
  auto b = make_sig(GateType::kNand, {{"(pp)N", 3}, {"(pp)O", 4}});
  auto c = make_sig(GateType::kNand, {{"(pp)N", 5}, {"(pp)X", 6}});
  std::vector<NetId> group{NetId(10), NetId(11), NetId(12)};
  std::vector<BitSignature> sigs{a, b, c};
  const auto subgroups = form_subgroups(group, sigs);
  ASSERT_EQ(subgroups.size(), 1u);
  const Subgroup& sg = subgroups[0];
  EXPECT_FALSE(sg.fully_similar);
  ASSERT_EQ(sg.dissimilar.size(), 3u);
  EXPECT_EQ(sg.dissimilar[0], std::vector<NetId>{NetId(2)});
  EXPECT_EQ(sg.dissimilar[1], std::vector<NetId>{NetId(4)});
  EXPECT_EQ(sg.dissimilar[2], std::vector<NetId>{NetId(6)});
  (void)common;
}

TEST(Subgroups, BreakOnNoMatch) {
  auto a = make_sig(GateType::kNand, {{"(pp)N", 1}});
  auto alien = make_sig(GateType::kNand, {{"(pp)R", 2}});
  std::vector<NetId> group{NetId(10), NetId(11), NetId(12)};
  std::vector<BitSignature> sigs{a, alien, a};
  const auto subgroups = form_subgroups(group, sigs);
  ASSERT_EQ(subgroups.size(), 3u);
}

TEST(Subgroups, FullMatchOnlyModeSplitsPartialChains) {
  auto a = make_sig(GateType::kNand, {{"(pp)N", 1}, {"(pp)A", 2}});
  auto b = make_sig(GateType::kNand, {{"(pp)N", 3}, {"(pp)O", 4}});
  std::vector<NetId> group{NetId(10), NetId(11)};
  std::vector<BitSignature> sigs{a, b};
  EXPECT_EQ(form_subgroups(group, sigs, false).size(), 1u);
  EXPECT_EQ(form_subgroups(group, sigs, true).size(), 2u);
}

TEST(Subgroups, MiddleBitAccumulatesBothNeighbours) {
  // a<->b partial (b's extra X), b<->c partial (b's extra Y unmatched too).
  auto a = make_sig(GateType::kNand, {{"(pp)N", 1}});
  auto b = make_sig(GateType::kNand, {{"(pp)N", 2}, {"(pp)X", 3}, {"(pp)Y", 4}});
  auto c = make_sig(GateType::kNand, {{"(pp)N", 5}, {"(pp)X", 6}});
  std::vector<NetId> group{NetId(10), NetId(11), NetId(12)};
  std::vector<BitSignature> sigs{a, b, c};
  const auto subgroups = form_subgroups(group, sigs);
  ASSERT_EQ(subgroups.size(), 1u);
  // b recorded X and Y from the first comparison; the second comparison
  // matches X but leaves Y (and nothing new) — union preserved, no dupes.
  const auto& b_dissimilar = subgroups[0].dissimilar[1];
  EXPECT_EQ(b_dissimilar.size(), 2u);
}

TEST(Subgroups, EmptyGroup) {
  EXPECT_TRUE(form_subgroups({}, {}).empty());
}

TEST(Subgroups, MismatchedSpansRejected) {
  std::vector<NetId> group{NetId(1)};
  std::vector<BitSignature> sigs;
  EXPECT_THROW(form_subgroups(group, sigs), ContractViolation);
}

}  // namespace
}  // namespace netrev::wordrec
