#include "wordrec/grouping.h"

#include <gtest/gtest.h>

namespace netrev::wordrec {
namespace {

using netlist::GateType;
using netlist::NetId;
using netlist::Netlist;

struct Builder {
  Netlist nl;
  NetId a, b;

  Builder() {
    a = nl.add_net("a");
    b = nl.add_net("b");
    nl.mark_primary_input(a);
    nl.mark_primary_input(b);
  }

  NetId emit(GateType type) {
    static int counter = 0;
    const NetId out = nl.add_net("n" + std::to_string(counter++));
    if (type == GateType::kNot || type == GateType::kBuf)
      nl.add_gate(type, out, {a});
    else
      nl.add_gate(type, out, {a, b});
    return out;
  }
};

TEST(Grouping, EmptyNetlistHasNoGroups) {
  Netlist nl;
  EXPECT_TRUE(potential_bit_groups(nl).empty());
}

TEST(Grouping, SingleRunOfEqualTypes) {
  Builder b;
  const NetId n1 = b.emit(GateType::kNand);
  const NetId n2 = b.emit(GateType::kNand);
  const NetId n3 = b.emit(GateType::kNand);
  const auto groups = potential_bit_groups(b.nl);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0], (PotentialBitGroup{n1, n2, n3}));
}

TEST(Grouping, TypeChangeStartsNewGroup) {
  Builder b;
  b.emit(GateType::kNand);
  b.emit(GateType::kNand);
  b.emit(GateType::kXor);
  b.emit(GateType::kNand);
  const auto groups = potential_bit_groups(b.nl);
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0].size(), 2u);
  EXPECT_EQ(groups[1].size(), 1u);
  EXPECT_EQ(groups[2].size(), 1u);
}

TEST(Grouping, ArityDoesNotSplitGroups) {
  // Paper groups by root gate TYPE; a 2-input and a 3-input NAND share one.
  Builder b;
  const NetId c = b.nl.add_net("c");
  b.nl.mark_primary_input(c);
  const NetId n1 = b.nl.add_net("w1");
  b.nl.add_gate(GateType::kNand, n1, {b.a, b.b});
  const NetId n2 = b.nl.add_net("w2");
  b.nl.add_gate(GateType::kNand, n2, {b.a, b.b, c});
  const auto groups = potential_bit_groups(b.nl);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].size(), 2u);
}

TEST(Grouping, CoversEveryGateExactlyOnce) {
  Builder b;
  for (int i = 0; i < 7; ++i)
    b.emit(i % 2 ? GateType::kAnd : GateType::kOr);
  const auto groups = potential_bit_groups(b.nl);
  std::size_t total = 0;
  for (const auto& group : groups) total += group.size();
  EXPECT_EQ(total, b.nl.gate_count());
}

TEST(Grouping, FlopsGroupTogether) {
  Builder b;
  const NetId d = b.emit(GateType::kNot);
  const NetId q1 = b.nl.add_net("q1");
  const NetId q2 = b.nl.add_net("q2");
  b.nl.add_gate(GateType::kDff, q1, {d});
  b.nl.add_gate(GateType::kDff, q2, {d});
  const auto groups = potential_bit_groups(b.nl);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[1], (PotentialBitGroup{q1, q2}));
}

TEST(Grouping, GroupsListOutputNetsInFileOrder) {
  Builder b;
  std::vector<NetId> emitted;
  for (int i = 0; i < 5; ++i) emitted.push_back(b.emit(GateType::kXor));
  const auto groups = potential_bit_groups(b.nl);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0], emitted);
}

// --- cross-group checking (§2.2's stated future improvement) --------------

TEST(CrossGroup, RejoinsRunsSplitByAStrayLine) {
  Builder b;
  const NetId n1 = b.emit(GateType::kNand);
  const NetId n2 = b.emit(GateType::kNand);
  const NetId stray = b.emit(GateType::kXor);
  const NetId n3 = b.emit(GateType::kNand);
  const NetId n4 = b.emit(GateType::kNand);
  auto groups = potential_bit_groups(b.nl);
  ASSERT_EQ(groups.size(), 3u);
  const auto merged = merge_groups_across_gaps(b.nl, std::move(groups), 2);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0], (PotentialBitGroup{n1, n2, n3, n4}));
  EXPECT_EQ(merged[1], (PotentialBitGroup{stray}));
}

TEST(CrossGroup, RespectsGapLimit) {
  Builder b;
  b.emit(GateType::kNand);
  for (int i = 0; i < 3; ++i) b.emit(GateType::kXor);  // gap of 3 lines
  b.emit(GateType::kNand);
  auto groups = potential_bit_groups(b.nl);
  const auto merged = merge_groups_across_gaps(b.nl, std::move(groups), 2);
  EXPECT_EQ(merged.size(), 3u);  // gap too wide: nothing merged
}

TEST(CrossGroup, ChainsAcrossSeveralGaps) {
  Builder b;
  std::vector<NetId> nands;
  for (int block = 0; block < 3; ++block) {
    nands.push_back(b.emit(GateType::kNand));
    nands.push_back(b.emit(GateType::kNand));
    if (block < 2) b.emit(GateType::kOr);
  }
  auto groups = potential_bit_groups(b.nl);
  const auto merged = merge_groups_across_gaps(b.nl, std::move(groups), 1);
  // All three NAND runs coalesce; the two OR strays stay alone.
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0], nands);
}

TEST(CrossGroup, DifferentTypesNeverMerge) {
  Builder b;
  b.emit(GateType::kNand);
  b.emit(GateType::kXor);
  b.emit(GateType::kNor);
  auto groups = potential_bit_groups(b.nl);
  const auto merged = merge_groups_across_gaps(b.nl, std::move(groups), 4);
  EXPECT_EQ(merged.size(), 3u);
}

TEST(CrossGroup, PreservesTotalCoverage) {
  Builder b;
  for (int i = 0; i < 9; ++i)
    b.emit(i % 3 == 2 ? GateType::kXor : GateType::kNand);
  auto groups = potential_bit_groups(b.nl);
  const auto merged = merge_groups_across_gaps(b.nl, std::move(groups), 2);
  std::size_t total = 0;
  for (const auto& group : merged) total += group.size();
  EXPECT_EQ(total, b.nl.gate_count());
}

}  // namespace
}  // namespace netrev::wordrec
