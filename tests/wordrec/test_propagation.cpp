#include "wordrec/propagation.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace netrev::wordrec {
namespace {

using netlist::GateType;
using netlist::NetId;
using netlist::Netlist;

// A 3-bit word whose bits are NAND(AND(x_i, y_i), NOT(s_i)): subtree roots
// and leaves all align unambiguously across bits.
struct Fixture {
  Netlist nl;
  std::vector<NetId> x, y, s;
  std::vector<NetId> and_nets, not_nets, bits;

  Fixture() {
    for (int i = 0; i < 3; ++i) {
      x.push_back(pi("x" + std::to_string(i)));
      y.push_back(flop("y" + std::to_string(i)));
      s.push_back(pi("s" + std::to_string(i)));
    }
    for (int i = 0; i < 3; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      and_nets.push_back(gate(GateType::kAnd, "a" + std::to_string(i),
                              {x[idx], y[idx]}));
      not_nets.push_back(gate(GateType::kNot, "n" + std::to_string(i), {s[idx]}));
    }
    for (int i = 0; i < 3; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      bits.push_back(gate(GateType::kNand, "bit" + std::to_string(i),
                          {and_nets[idx], not_nets[idx]}));
    }
  }

  NetId pi(const std::string& name) {
    const NetId id = nl.add_net(name);
    nl.mark_primary_input(id);
    return id;
  }
  NetId flop(const std::string& name) {
    const NetId d = pi(name + "_d");
    const NetId q = nl.add_net(name);
    nl.add_gate(GateType::kDff, q, {d});
    return q;
  }
  NetId gate(GateType type, const std::string& name,
             std::initializer_list<NetId> ins) {
    const NetId id = nl.add_net(name);
    nl.add_gate(type, id, ins);
    return id;
  }

  WordSet word_set() const {
    WordSet set;
    Word word;
    word.bits = bits;
    set.words.push_back(word);
    return set;
  }
};

bool has_candidate(const WordPropagationResult& result,
                   const std::vector<NetId>& bits) {
  return std::any_of(result.candidates.begin(), result.candidates.end(),
                     [&](const PropagatedWord& c) { return c.word.bits == bits; });
}

TEST(Propagation, DerivesSubtreeRootWords) {
  Fixture f;
  const auto result = propagate_words(f.nl, f.word_set());
  EXPECT_EQ(result.parents_used, 1u);
  EXPECT_TRUE(has_candidate(result, f.and_nets));
  EXPECT_TRUE(has_candidate(result, f.not_nets));
}

TEST(Propagation, DerivesAlignedLeafWords) {
  Fixture f;
  const auto result = propagate_words(f.nl, f.word_set());
  EXPECT_TRUE(has_candidate(result, f.x));
  EXPECT_TRUE(has_candidate(result, f.y));
  EXPECT_TRUE(has_candidate(result, f.s));
}

TEST(Propagation, CandidateSourcesAreLabelled) {
  Fixture f;
  const auto result = propagate_words(f.nl, f.word_set());
  for (const auto& candidate : result.candidates) {
    if (candidate.word.bits == f.and_nets) {
      EXPECT_EQ(candidate.source, PropagatedWord::Source::kSubtreeRoots);
    }
    if (candidate.word.bits == f.x) {
      EXPECT_EQ(candidate.source, PropagatedWord::Source::kAlignedLeaves);
    }
  }
}

TEST(Propagation, SkipsSingletonParents) {
  Fixture f;
  WordSet set;
  Word narrow;
  narrow.bits = {f.bits[0]};
  set.words.push_back(narrow);
  const auto result = propagate_words(f.nl, set);
  EXPECT_EQ(result.parents_used, 0u);
  EXPECT_TRUE(result.candidates.empty());
}

TEST(Propagation, SkipsMisalignedParents) {
  Fixture f;
  // A fake "word" over structurally different bits contributes nothing.
  WordSet set;
  Word fake;
  fake.bits = {f.bits[0], f.and_nets[0]};
  set.words.push_back(fake);
  const auto result = propagate_words(f.nl, set);
  EXPECT_EQ(result.parents_used, 0u);
}

TEST(Propagation, SharedNetAcrossBitsIsRejected) {
  // All bits read the SAME select inverter: the aligned "word" would repeat
  // one net and must be dropped.
  Netlist nl;
  const NetId s = nl.add_net("s");
  nl.mark_primary_input(s);
  const NetId shared_not = nl.add_net("sn");
  nl.add_gate(GateType::kNot, shared_not, {s});
  std::vector<NetId> bits;
  std::vector<NetId> xs;
  for (int i = 0; i < 3; ++i) {
    const NetId x = nl.add_net("x" + std::to_string(i));
    nl.mark_primary_input(x);
    xs.push_back(x);
    const NetId a = nl.add_net("a" + std::to_string(i));
    nl.add_gate(GateType::kAnd, a, {x, s});
    const NetId bit = nl.add_net("bit" + std::to_string(i));
    nl.add_gate(GateType::kNand, bit, {a, shared_not});
    bits.push_back(bit);
  }
  WordSet set;
  Word word;
  word.bits = bits;
  set.words.push_back(word);
  const auto result = propagate_words(nl, set);
  for (const auto& candidate : result.candidates)
    EXPECT_NE(candidate.word.bits,
              (std::vector<NetId>{shared_not, shared_not, shared_not}));
}

TEST(Propagation, AmbiguousPositionsAreSkippedNotGuessed) {
  // Bits whose two subtrees have IDENTICAL keys: alignment is ambiguous.
  Netlist nl;
  std::vector<NetId> bits;
  for (int i = 0; i < 2; ++i) {
    const auto pi = [&](const std::string& n) {
      const NetId id = nl.add_net(n + std::to_string(i));
      nl.mark_primary_input(id);
      return id;
    };
    const NetId a1 = nl.add_net("a1_" + std::to_string(i));
    nl.add_gate(GateType::kAnd, a1, {pi("p"), pi("q")});
    const NetId a2 = nl.add_net("a2_" + std::to_string(i));
    nl.add_gate(GateType::kAnd, a2, {pi("r"), pi("t")});
    const NetId bit = nl.add_net("bit" + std::to_string(i));
    nl.add_gate(GateType::kNand, bit, {a1, a2});
    bits.push_back(bit);
  }
  WordSet set;
  Word word;
  word.bits = bits;
  set.words.push_back(word);
  const auto result = propagate_words(nl, set);
  EXPECT_GT(result.ambiguous_positions, 0u);
  EXPECT_TRUE(result.candidates.empty());
}

TEST(Propagation, DoesNotReturnInputWords) {
  Fixture f;
  WordSet set = f.word_set();
  Word also_ands;
  also_ands.bits = f.and_nets;
  set.words.push_back(also_ands);
  const auto result = propagate_words(f.nl, set);
  EXPECT_FALSE(has_candidate(result, f.and_nets));  // already known
  EXPECT_FALSE(has_candidate(result, f.bits));
}

TEST(Propagation, FixpointIteratesThroughDerivedWords) {
  // bits -> AND layer -> deeper XOR layer: the fixpoint reaches the deep
  // layer even though depth-1 candidates only see the AND roots...
  Fixture shallow;
  const auto once = propagate_words(shallow.nl, shallow.word_set());
  const auto fix = propagate_words_to_fixpoint(shallow.nl, shallow.word_set());
  EXPECT_GE(fix.candidates.size(), once.candidates.size());
}

TEST(Propagation, RespectsMinWidth) {
  Fixture f;
  const auto result = propagate_words(f.nl, f.word_set(), {}, 4);
  EXPECT_TRUE(result.candidates.empty());  // parent is only 3 bits wide
}

}  // namespace
}  // namespace netrev::wordrec
