#include "eval/table.h"

#include <gtest/gtest.h>

namespace netrev::eval {
namespace {

Table1Row sample_row(const std::string& name, double base_full,
                     double ours_full) {
  Table1Row row;
  row.benchmark = name;
  row.gates = 100;
  row.nets = 120;
  row.flops = 30;
  row.reference_words = 7;
  row.avg_word_size = 3.14;
  row.base.full_pct = base_full;
  row.base.fragmentation = 0.5;
  row.base.not_found_pct = 14.3;
  row.base.seconds = 0.01;
  row.ours.full_pct = ours_full;
  row.ours.fragmentation = 0.2;
  row.ours.not_found_pct = 14.3;
  row.ours.seconds = 0.05;
  row.ours.control_signals = 2;
  return row;
}

TEST(Table, MakeCellsConvertsFractions) {
  EvaluationSummary summary;
  summary.reference_words = 4;
  summary.fully_found = 3;
  summary.not_found = 1;
  summary.full_fraction = 0.75;
  summary.not_found_fraction = 0.25;
  summary.avg_fragmentation = 0.4;
  TechniqueRun run;
  run.seconds = 1.5;
  run.control_signals = 3;
  const TechniqueCells cells = make_cells(summary, run);
  EXPECT_DOUBLE_EQ(cells.full_pct, 75.0);
  EXPECT_DOUBLE_EQ(cells.not_found_pct, 25.0);
  EXPECT_DOUBLE_EQ(cells.fragmentation, 0.4);
  EXPECT_DOUBLE_EQ(cells.seconds, 1.5);
  EXPECT_EQ(cells.control_signals, 3u);
}

TEST(Table, AverageRowIsArithmeticMean) {
  const std::vector<Table1Row> rows = {sample_row("a", 40.0, 60.0),
                                       sample_row("b", 60.0, 80.0)};
  const Table1Row avg = average_row(rows);
  EXPECT_DOUBLE_EQ(avg.base.full_pct, 50.0);
  EXPECT_DOUBLE_EQ(avg.ours.full_pct, 70.0);
  EXPECT_DOUBLE_EQ(avg.base.fragmentation, 0.5);
  EXPECT_EQ(avg.benchmark, "Average");
}

TEST(Table, AverageOfEmptyIsZeroes) {
  const Table1Row avg = average_row({});
  EXPECT_DOUBLE_EQ(avg.base.full_pct, 0.0);
}

TEST(Table, RenderContainsBenchmarksAndTechniques) {
  const std::vector<Table1Row> rows = {sample_row("b03s", 71.4, 85.7)};
  const std::string table = render_table1(rows);
  EXPECT_NE(table.find("b03s"), std::string::npos);
  EXPECT_NE(table.find("Base"), std::string::npos);
  EXPECT_NE(table.find("Ours"), std::string::npos);
  EXPECT_NE(table.find("71.4"), std::string::npos);
  EXPECT_NE(table.find("85.7"), std::string::npos);
  EXPECT_NE(table.find("3.14"), std::string::npos);
}

TEST(Table, RenderIncludesAverageByDefault) {
  const std::vector<Table1Row> rows = {sample_row("x", 50, 60),
                                       sample_row("y", 70, 80)};
  EXPECT_NE(render_table1(rows).find("Average"), std::string::npos);
  EXPECT_EQ(render_table1(rows, false).find("Average"), std::string::npos);
}

TEST(Table, TwoSubRowsPerBenchmark) {
  const std::vector<Table1Row> rows = {sample_row("x", 50, 60)};
  const std::string table = render_table1(rows, false);
  std::size_t lines = 0;
  for (char c : table)
    if (c == '\n') ++lines;
  // header + separator + 2 technique rows
  EXPECT_EQ(lines, 4u);
}

}  // namespace
}  // namespace netrev::eval
