#include "eval/runner.h"

#include <gtest/gtest.h>

#include "itc/family.h"

namespace netrev::eval {
namespace {

TEST(Runner, BaselineRunsAndTimes) {
  const auto bench = itc::build_benchmark("b03s");
  const TechniqueRun run = run_baseline(bench.netlist);
  EXPECT_FALSE(run.words.words.empty());
  EXPECT_GE(run.seconds, 0.0);
  EXPECT_EQ(run.control_signals, 0u);
}

TEST(Runner, OursRunsAndReportsControls) {
  const auto bench = itc::build_benchmark("b08s");
  const TechniqueRun run = run_ours(bench.netlist);
  EXPECT_FALSE(run.words.words.empty());
  EXPECT_GE(run.seconds, 0.0);
  EXPECT_GT(run.control_signals, 0u);
  EXPECT_GT(run.stats.groups, 0u);
  EXPECT_GT(run.stats.reduction_trials, 0u);
}

TEST(Runner, OursNeverFindsFewerMultibitWordsThanBaseline) {
  for (const char* name : {"b03s", "b05s", "b08s"}) {
    const auto bench = itc::build_benchmark(name);
    const TechniqueRun base = run_baseline(bench.netlist);
    const TechniqueRun ours = run_ours(bench.netlist);
    EXPECT_GE(ours.words.count_multibit(), base.words.count_multibit())
        << name;
  }
}

}  // namespace
}  // namespace netrev::eval
