#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace netrev::eval {
namespace {

using netlist::NetId;
using wordrec::Word;
using wordrec::WordSet;

NetId net(int i) { return NetId(static_cast<std::uint32_t>(i)); }

WordSet words(std::vector<std::vector<int>> groups) {
  WordSet set;
  for (const auto& group : groups) {
    Word word;
    for (int i : group) word.bits.push_back(net(i));
    set.words.push_back(std::move(word));
  }
  return set;
}

ReferenceWord ref(std::string name, std::vector<int> bits) {
  ReferenceWord word;
  word.register_name = std::move(name);
  for (int i : bits) word.bits.push_back(net(i));
  return word;
}

TEST(Metrics, FullyFoundWhenOneWordCoversAll) {
  const WordSet generated = words({{1, 2, 3, 4}});
  const ReferenceWord reference[] = {ref("R", {1, 2, 3})};
  const auto summary = evaluate_words(generated, reference);
  EXPECT_EQ(summary.fully_found, 1u);
  EXPECT_EQ(summary.per_word[0].outcome, WordOutcome::kFullyFound);
  EXPECT_DOUBLE_EQ(summary.full_fraction, 1.0);
}

TEST(Metrics, SupersetWordStillCountsAsFull) {
  // Paper: "a word found using our technique includes all bits" — extra
  // bits in the generated word do not disqualify it.
  const WordSet generated = words({{9, 1, 2, 3, 7}});
  const ReferenceWord reference[] = {ref("R", {1, 2, 3})};
  EXPECT_EQ(evaluate_words(generated, reference).fully_found, 1u);
}

TEST(Metrics, NotFoundWhenAllBitsSeparate) {
  const WordSet generated = words({{1}, {2}, {3}});
  const ReferenceWord reference[] = {ref("R", {1, 2, 3})};
  const auto summary = evaluate_words(generated, reference);
  EXPECT_EQ(summary.not_found, 1u);
  EXPECT_DOUBLE_EQ(summary.not_found_fraction, 1.0);
  EXPECT_DOUBLE_EQ(summary.avg_fragmentation, 0.0);
}

TEST(Metrics, PartialWithFragmentation) {
  // 8-bit word split into two 4-bit generated words: fragmentation 2/8.
  const WordSet generated = words({{1, 2, 3, 4}, {5, 6, 7, 8}});
  const ReferenceWord reference[] = {ref("R", {1, 2, 3, 4, 5, 6, 7, 8})};
  const auto summary = evaluate_words(generated, reference);
  EXPECT_EQ(summary.partially_found, 1u);
  EXPECT_DOUBLE_EQ(summary.per_word[0].fragmentation, 0.25);
  EXPECT_DOUBLE_EQ(summary.avg_fragmentation, 0.25);
}

TEST(Metrics, TwoBitWordIsNeverPartial) {
  // With 2 bits: together -> full; apart -> not found.
  const WordSet apart = words({{1, 9}, {2, 8}});
  const ReferenceWord reference[] = {ref("R", {1, 2})};
  const auto summary = evaluate_words(apart, reference);
  EXPECT_EQ(summary.not_found, 1u);
  EXPECT_EQ(summary.partially_found, 0u);
}

TEST(Metrics, MixedOutcomesAverageCorrectly) {
  const WordSet generated = words({
      {1, 2, 3},     // R1 fully found
      {4, 5},        // R2 partial piece 1
      {6},           // R2 partial piece 2 (singleton)
      {7}, {8}, {9}  // R3 all separate
  });
  const ReferenceWord reference[] = {ref("R1", {1, 2, 3}),
                                     ref("R2", {4, 5, 6}),
                                     ref("R3", {7, 8, 9})};
  const auto summary = evaluate_words(generated, reference);
  EXPECT_EQ(summary.fully_found, 1u);
  EXPECT_EQ(summary.partially_found, 1u);
  EXPECT_EQ(summary.not_found, 1u);
  EXPECT_NEAR(summary.full_fraction, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(summary.not_found_fraction, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(summary.avg_fragmentation, 2.0 / 3.0, 1e-12);
}

TEST(Metrics, UncoveredBitsActAsSingletons) {
  // Bit 3 is absent from the generated partition entirely.
  const WordSet generated = words({{1, 2}});
  const ReferenceWord reference[] = {ref("R", {1, 2, 3})};
  const auto summary = evaluate_words(generated, reference);
  EXPECT_EQ(summary.partially_found, 1u);
  EXPECT_DOUBLE_EQ(summary.per_word[0].fragmentation, 2.0 / 3.0);
}

TEST(Metrics, TwoUncoveredBitsGetDistinctPseudoWords) {
  const WordSet generated = words({{1}});
  const ReferenceWord reference[] = {ref("R", {1, 2, 3})};
  const auto summary = evaluate_words(generated, reference);
  // bits 2 and 3 uncovered -> 3 distinct pieces -> not found.
  EXPECT_EQ(summary.not_found, 1u);
}

TEST(Metrics, EmptyReferenceGivesZeroes) {
  const WordSet generated = words({{1, 2}});
  const auto summary = evaluate_words(generated, {});
  EXPECT_EQ(summary.reference_words, 0u);
  EXPECT_DOUBLE_EQ(summary.full_fraction, 0.0);
  EXPECT_DOUBLE_EQ(summary.avg_fragmentation, 0.0);
}

TEST(Metrics, FragmentationAveragesOnlyOverPartials) {
  const WordSet generated = words({
      {1, 2, 3, 4, 5, 6}, // R1 full
      {10, 11}, {12, 13}  // R2 split in two (4 bits)
  });
  const ReferenceWord reference[] = {ref("R1", {1, 2, 3, 4, 5, 6}),
                                     ref("R2", {10, 11, 12, 13})};
  const auto summary = evaluate_words(generated, reference);
  EXPECT_DOUBLE_EQ(summary.avg_fragmentation, 0.5);  // only R2 counts
}

TEST(Metrics, PerWordParallelToReference) {
  const WordSet generated = words({{1, 2}, {3}, {4}});
  const ReferenceWord reference[] = {ref("A", {1, 2}), ref("B", {3, 4})};
  const auto summary = evaluate_words(generated, reference);
  ASSERT_EQ(summary.per_word.size(), 2u);
  EXPECT_EQ(summary.per_word[0].outcome, WordOutcome::kFullyFound);
  EXPECT_EQ(summary.per_word[1].outcome, WordOutcome::kNotFound);
}

}  // namespace
}  // namespace netrev::eval
