#include "eval/diagnose.h"

#include <gtest/gtest.h>

#include "eval/runner.h"
#include "itc/family.h"

namespace netrev::eval {
namespace {

using netlist::GateType;
using netlist::NetId;
using netlist::Netlist;
using wordrec::Word;
using wordrec::WordSet;

struct Fixture {
  Netlist nl;
  ReferenceExtraction reference;
  std::vector<NetId> a_bits, b_bits;

  Fixture() {
    // Two reference words: A_REG (3 bits), B_REG (2 bits).
    for (int i = 0; i < 3; ++i) a_bits.push_back(add_flop("A_REG", i));
    for (int i = 0; i < 2; ++i) b_bits.push_back(add_flop("B_REG", i));
    reference = extract_reference_words(nl);
  }

  NetId add_flop(const std::string& base, int index) {
    const NetId d = nl.add_net(base + "_d" + std::to_string(index));
    nl.mark_primary_input(d);
    const NetId q =
        nl.add_net(base + "_" + std::to_string(index) + "_");
    nl.add_gate(GateType::kDff, q, {d});
    nl.mark_primary_output(q);
    return d;
  }
};

TEST(Diagnose, ClassifiesAndSizesFragments) {
  Fixture f;
  WordSet generated;
  generated.words.push_back(Word{{f.a_bits[0], f.a_bits[1]}});  // A split
  generated.words.push_back(Word{{f.a_bits[2]}});
  generated.words.push_back(Word{{f.b_bits[0], f.b_bits[1]}});  // B full

  const Diagnosis diagnosis = diagnose(f.nl, generated, f.reference);
  ASSERT_EQ(diagnosis.words.size(), 2u);
  EXPECT_EQ(diagnosis.words[0].register_name, "A_REG");
  EXPECT_EQ(diagnosis.words[0].outcome, WordOutcome::kPartiallyFound);
  EXPECT_EQ(diagnosis.words[0].fragment_sizes,
            (std::vector<std::size_t>{2, 1}));
  EXPECT_EQ(diagnosis.words[1].outcome, WordOutcome::kFullyFound);
}

TEST(Diagnose, UncoveredBitsBecomeUnitFragments) {
  Fixture f;
  WordSet generated;
  generated.words.push_back(Word{{f.a_bits[0], f.a_bits[1]}});
  // a_bits[2] and both B bits are uncovered.
  const Diagnosis diagnosis = diagnose(f.nl, generated, f.reference);
  EXPECT_EQ(diagnosis.words[0].fragment_sizes,
            (std::vector<std::size_t>{2, 1}));
  EXPECT_EQ(diagnosis.words[1].outcome, WordOutcome::kNotFound);
  EXPECT_EQ(diagnosis.words[1].fragment_sizes,
            (std::vector<std::size_t>{1, 1}));
}

TEST(Diagnose, RenderMentionsOutcomesAndNames) {
  Fixture f;
  WordSet generated;
  generated.words.push_back(Word{{f.a_bits[0], f.a_bits[1], f.a_bits[2]}});
  generated.words.push_back(Word{{f.b_bits[0]}});
  generated.words.push_back(Word{{f.b_bits[1]}});
  const std::string text =
      render_diagnosis(diagnose(f.nl, generated, f.reference));
  EXPECT_NE(text.find("FULL"), std::string::npos);
  EXPECT_NE(text.find("MISSING"), std::string::npos);
  EXPECT_NE(text.find("A_REG"), std::string::npos);
  EXPECT_NE(text.find("fragments: 1 1"), std::string::npos);
}

TEST(Diagnose, AgreesWithPipelineOnFamilyBenchmark) {
  const auto bench = itc::build_benchmark("b08s");
  const auto reference = extract_reference_words(bench.netlist);
  const auto ours = run_ours(bench.netlist);
  const Diagnosis diagnosis = diagnose(bench.netlist, ours.words, reference);
  EXPECT_EQ(diagnosis.summary.fully_found, 4u);   // 80% of 5 words
  EXPECT_EQ(diagnosis.summary.not_found, 1u);
  // The missing word is the heterogeneous state register.
  for (const auto& word : diagnosis.words)
    if (word.outcome == WordOutcome::kNotFound) {
      EXPECT_EQ(word.register_name, "STATO_reg");
    }
}

}  // namespace
}  // namespace netrev::eval
