#include "eval/reference.h"

#include <gtest/gtest.h>

namespace netrev::eval {
namespace {

using netlist::GateType;
using netlist::NetId;
using netlist::Netlist;

TEST(RegisterBitName, SynopsysFlattenedStyle) {
  const auto parsed = parse_register_bit_name("COUNT_REG_5_");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->base, "COUNT_REG");
  EXPECT_EQ(parsed->index, 5u);
}

TEST(RegisterBitName, BracketStyle) {
  const auto parsed = parse_register_bit_name("COUNT_REG[12]");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->base, "COUNT_REG");
  EXPECT_EQ(parsed->index, 12u);
}

TEST(RegisterBitName, PlainTrailingIndex) {
  const auto parsed = parse_register_bit_name("COUNT_REG_7");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->base, "COUNT_REG");
  EXPECT_EQ(parsed->index, 7u);
}

TEST(RegisterBitName, RejectsScalarsAndMalformed) {
  EXPECT_FALSE(parse_register_bit_name("stato_reg").has_value());
  EXPECT_FALSE(parse_register_bit_name("REG[a]").has_value());
  EXPECT_FALSE(parse_register_bit_name("REG[]").has_value());
  EXPECT_FALSE(parse_register_bit_name("_5_").has_value());
  EXPECT_FALSE(parse_register_bit_name("[5]").has_value());
  EXPECT_FALSE(parse_register_bit_name("plainname").has_value());
  EXPECT_FALSE(parse_register_bit_name("").has_value());
}

// Builds flops named <reg>_REG_<i>_ whose D inputs are fresh PI-driven nets.
struct Builder {
  Netlist nl;
  int counter = 0;

  NetId add_flop(const std::string& q_name) {
    const NetId d = nl.add_net("d" + std::to_string(counter++));
    nl.mark_primary_input(d);
    const NetId q = nl.add_net(q_name);
    nl.add_gate(GateType::kDff, q, {d});
    nl.mark_primary_output(q);
    return d;
  }
};

TEST(ReferenceExtraction, GroupsBitsByBaseName) {
  Builder b;
  const NetId d0 = b.add_flop("A_REG_0_");
  const NetId d1 = b.add_flop("A_REG_1_");
  const NetId d2 = b.add_flop("A_REG_2_");
  b.add_flop("B_REG_0_");
  b.add_flop("B_REG_1_");

  const auto extraction = extract_reference_words(b.nl);
  ASSERT_EQ(extraction.words.size(), 2u);
  EXPECT_EQ(extraction.words[0].register_name, "A_REG");
  EXPECT_EQ(extraction.words[0].bits, (std::vector<NetId>{d0, d1, d2}));
  EXPECT_EQ(extraction.words[1].register_name, "B_REG");
  EXPECT_EQ(extraction.flop_count, 5u);
  EXPECT_EQ(extraction.indexed_flops, 5u);
}

TEST(ReferenceExtraction, WordBitsAreDInputsNotQOutputs) {
  Builder b;
  const NetId d0 = b.add_flop("A_REG_0_");
  b.add_flop("A_REG_1_");
  const auto extraction = extract_reference_words(b.nl);
  ASSERT_EQ(extraction.words.size(), 1u);
  EXPECT_EQ(extraction.words[0].bits[0], d0);
  EXPECT_FALSE(b.nl.is_flop_output(extraction.words[0].bits[0]));
}

TEST(ReferenceExtraction, BitsOrderedByIndexNotByFileOrder) {
  Builder b;
  const NetId d2 = b.add_flop("A_REG_2_");
  const NetId d0 = b.add_flop("A_REG_0_");
  const NetId d1 = b.add_flop("A_REG_1_");
  const auto extraction = extract_reference_words(b.nl);
  ASSERT_EQ(extraction.words.size(), 1u);
  EXPECT_EQ(extraction.words[0].bits, (std::vector<NetId>{d0, d1, d2}));
}

TEST(ReferenceExtraction, MinWidthFiltersNarrowRegisters) {
  Builder b;
  b.add_flop("A_REG_0_");
  b.add_flop("A_REG_1_");
  b.add_flop("LONE_REG_0_");
  const auto extraction = extract_reference_words(b.nl, 2);
  ASSERT_EQ(extraction.words.size(), 1u);
  EXPECT_EQ(extraction.words[0].register_name, "A_REG");
  const auto loose = extract_reference_words(b.nl, 1);
  EXPECT_EQ(loose.words.size(), 2u);
}

TEST(ReferenceExtraction, ScalarsCountedButNotWorded) {
  Builder b;
  b.add_flop("A_REG_0_");
  b.add_flop("A_REG_1_");
  b.add_flop("stato_reg");
  const auto extraction = extract_reference_words(b.nl);
  EXPECT_EQ(extraction.flop_count, 3u);
  EXPECT_EQ(extraction.indexed_flops, 2u);
  EXPECT_EQ(extraction.words.size(), 1u);
}

TEST(ReferenceExtraction, AverageWordSize) {
  Builder b;
  b.add_flop("A_REG_0_");
  b.add_flop("A_REG_1_");
  b.add_flop("B_REG_0_");
  b.add_flop("B_REG_1_");
  b.add_flop("B_REG_2_");
  b.add_flop("B_REG_3_");
  const auto extraction = extract_reference_words(b.nl);
  EXPECT_DOUBLE_EQ(extraction.average_word_size(), 3.0);
}

TEST(ReferenceExtraction, EmptyDesign) {
  const auto extraction = extract_reference_words(Netlist{});
  EXPECT_TRUE(extraction.words.empty());
  EXPECT_EQ(extraction.flop_count, 0u);
  EXPECT_DOUBLE_EQ(extraction.average_word_size(), 0.0);
}

TEST(ReferenceExtraction, DeterministicNameOrder) {
  Builder b;
  b.add_flop("ZULU_REG_0_");
  b.add_flop("ZULU_REG_1_");
  b.add_flop("ALFA_REG_0_");
  b.add_flop("ALFA_REG_1_");
  const auto extraction = extract_reference_words(b.nl);
  ASSERT_EQ(extraction.words.size(), 2u);
  EXPECT_EQ(extraction.words[0].register_name, "ALFA_REG");
  EXPECT_EQ(extraction.words[1].register_name, "ZULU_REG");
}

}  // namespace
}  // namespace netrev::eval
