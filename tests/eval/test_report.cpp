#include "eval/report.h"

#include <gtest/gtest.h>

#include "itc/family.h"
#include "wordrec/identify.h"

namespace netrev::eval {
namespace {

using netlist::GateType;
using netlist::NetId;
using netlist::Netlist;

TEST(JsonEscape, PassesPlainText) {
  EXPECT_EQ(json_escape("U215"), "U215");
}

TEST(JsonEscape, EscapesSpecials) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(WordsJson, EmitsMultibitWordsOnly) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");
  const NetId c = nl.add_net("c");
  nl.mark_primary_input(a);
  nl.mark_primary_input(b);
  nl.mark_primary_input(c);

  wordrec::WordSet words;
  words.words.push_back(wordrec::Word{{a, b}});
  words.words.push_back(wordrec::Word{{c}});

  const std::string json = words_to_json(nl, words);
  EXPECT_EQ(json,
            R"({"schema_version":1,"words":[{"width":2,"bits":["a","b"]}]})");
  const std::string with_singles = words_to_json(nl, words, true);
  EXPECT_NE(with_singles.find("\"c\""), std::string::npos);
}

TEST(IdentifyJson, ContainsAllSections) {
  const auto bench = itc::build_benchmark("b08s");
  const auto result = wordrec::identify_words(bench.netlist);
  const std::string json = identify_result_to_json(bench.netlist, result);
  for (const char* key :
       {"\"multibit_words\"", "\"control_signals\"", "\"unified\"",
        "\"stats\"", "\"words\"", "\"assignment\"", "\"reduction_trials\""})
    EXPECT_NE(json.find(key), std::string::npos) << key;
  // Balanced braces / brackets (cheap well-formedness check).
  int braces = 0, brackets = 0;
  for (char ch : json) {
    braces += ch == '{';
    braces -= ch == '}';
    brackets += ch == '[';
    brackets -= ch == ']';
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(EvaluationJson, PerWordOutcomes) {
  EvaluationSummary summary;
  summary.reference_words = 2;
  summary.fully_found = 1;
  summary.not_found = 1;
  summary.full_fraction = 0.5;
  summary.not_found_fraction = 0.5;
  summary.per_word = {{WordOutcome::kFullyFound, 1, 0.0},
                      {WordOutcome::kNotFound, 3, 0.0}};
  ReferenceWord words[2];
  words[0].register_name = "A_REG";
  words[1].register_name = "B_REG";
  const std::string json = evaluation_to_json(summary, words);
  EXPECT_NE(json.find("\"A_REG\""), std::string::npos);
  EXPECT_NE(json.find("\"outcome\":\"full\""), std::string::npos);
  EXPECT_NE(json.find("\"outcome\":\"not_found\""), std::string::npos);
  EXPECT_NE(json.find("\"full_pct\":50.0000"), std::string::npos);
}

TEST(TableRowJson, RoundTripsValues) {
  Table1Row row;
  row.benchmark = "b03s";
  row.gates = 169;
  row.flops = 30;
  row.base.full_pct = 71.4;
  row.ours.full_pct = 85.7;
  row.ours.control_signals = 1;
  const std::string json = table_row_to_json(row);
  EXPECT_NE(json.find("\"benchmark\":\"b03s\""), std::string::npos);
  EXPECT_NE(json.find("\"gates\":169"), std::string::npos);
  EXPECT_NE(json.find("\"full_pct\":71.4000"), std::string::npos);
  EXPECT_NE(json.find("\"control_signals\":1"), std::string::npos);
}

}  // namespace
}  // namespace netrev::eval
