#include "cli/options.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

namespace netrev::cli {
namespace {

const CommandSpec& cmd(const char* name) {
  const CommandSpec* command = find_command(name);
  EXPECT_NE(command, nullptr) << name;
  return *command;
}

TEST(CliOptions, CommandTableKnowsEveryCommand) {
  for (const char* name : {"stats", "reference", "identify", "reduce",
                           "evaluate", "lint", "propagate", "batch",
                           "generate", "scan", "dot", "table"})
    EXPECT_NE(find_command(name), nullptr) << name;
  EXPECT_EQ(find_command("frobnicate"), nullptr);
}

TEST(CliOptions, EveryDeclaredFlagExistsInTheFlagTable) {
  for (const CommandSpec& command : command_table())
    for (FlagId id : command.flags) {
      bool found = false;
      for (const FlagSpec& flag : flag_table())
        if (flag.id == id) found = true;
      EXPECT_TRUE(found) << "command " << command.name
                         << " references an undeclared flag";
    }
}

TEST(CliOptions, ParsesBoolInlineAliasAndPositionalForms) {
  const ParsedFlags flags = parse_flags(
      cmd("identify"), {"identify", "b03s", "--json", "--depth=3", "-j", "2"},
      1);
  EXPECT_TRUE(flags.json);
  ASSERT_TRUE(flags.depth.has_value());
  EXPECT_EQ(*flags.depth, 3u);
  ASSERT_TRUE(flags.jobs.has_value());
  EXPECT_EQ(*flags.jobs, 2u);
  ASSERT_EQ(flags.positional.size(), 1u);
  EXPECT_EQ(flags.positional[0], "b03s");
}

TEST(CliOptions, RejectsMalformedFlagUses) {
  EXPECT_THROW((void)parse_flags(cmd("identify"), {"identify", "--bogus"}, 1),
               std::invalid_argument);
  EXPECT_THROW((void)parse_flags(cmd("identify"), {"identify", "--depth"}, 1),
               std::invalid_argument);  // needs a value
  EXPECT_THROW((void)parse_flags(cmd("identify"), {"identify", "--json=1"}, 1),
               std::invalid_argument);  // does not take a value
  EXPECT_THROW((void)parse_flags(cmd("identify"), {"identify", "--jobs", "0"},
                                 1),
               std::invalid_argument);  // positive thread count required
}

TEST(CliOptions, NonGlobalFlagsAreRejectedPerCommand) {
  try {
    (void)parse_flags(cmd("stats"), {"stats", "b03s", "--depth", "3"}, 1);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("not valid for 'stats'"),
              std::string::npos)
        << error.what();
  }
}

TEST(CliOptions, GlobalFlagsApplyToEveryCommand) {
  for (const CommandSpec& command : command_table()) {
    const ParsedFlags flags =
        parse_flags(command, {command.name, "--permissive"}, 1);
    EXPECT_TRUE(flags.permissive) << command.name;
  }
}

TEST(CliOptions, ProfileFormsParse) {
  const ParsedFlags text =
      parse_flags(cmd("identify"), {"identify", "x", "--profile"}, 1);
  EXPECT_TRUE(text.profile);
  EXPECT_FALSE(text.profile_json);
  const ParsedFlags json =
      parse_flags(cmd("identify"), {"identify", "x", "--profile=json"}, 1);
  EXPECT_TRUE(json.profile_json);
}

TEST(CliOptions, FailOnParsesSeverityNames) {
  const ParsedFlags flags =
      parse_flags(cmd("lint"), {"lint", "x", "--fail-on", "warning"}, 1);
  ASSERT_TRUE(flags.fail_on.has_value());
  EXPECT_EQ(*flags.fail_on, diag::Severity::kWarning);
  EXPECT_THROW(
      (void)parse_flags(cmd("lint"), {"lint", "x", "--fail-on", "fatal"}, 1),
      std::invalid_argument);
}

TEST(CliOptions, AssignAndRulesAccumulate) {
  const ParsedFlags reduce = parse_flags(
      cmd("reduce"), {"reduce", "x", "--assign", "A=0", "--assign", "B=1"}, 1);
  ASSERT_EQ(reduce.assignments.size(), 2u);
  EXPECT_EQ(reduce.assignments[0].first, "A");
  EXPECT_FALSE(reduce.assignments[0].second);
  EXPECT_EQ(reduce.assignments[1].first, "B");
  EXPECT_TRUE(reduce.assignments[1].second);
  EXPECT_THROW(
      (void)parse_flags(cmd("reduce"), {"reduce", "x", "--assign", "A=2"}, 1),
      std::invalid_argument);

  const ParsedFlags lint =
      parse_flags(cmd("lint"), {"lint", "x", "--rules", "a,b"}, 1);
  EXPECT_EQ(lint.rules, (std::vector<std::string>{"a", "b"}));
}

TEST(CliOptions, BatchFlagsParse) {
  const ParsedFlags flags = parse_flags(
      cmd("batch"), {"batch", "b03s", "b04s", "--keep-going", "--json"}, 1);
  EXPECT_TRUE(flags.keep_going);
  EXPECT_TRUE(flags.json);
  EXPECT_EQ(flags.positional,
            (std::vector<std::string>{"b03s", "b04s"}));
}

TEST(CliOptions, NumericFlagsRejectNegativeValues) {
  // std::stoul would wrap "-5" into a huge count; the central validator
  // rejects it with a diagnostic naming the flag.
  try {
    (void)parse_flags(cmd("identify"),
                      {"identify", "b03s", "--timeout", "-5"}, 1);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("--timeout"), std::string::npos) << what;
    EXPECT_NE(what.find("negative values are not allowed"), std::string::npos)
        << what;
  }
  EXPECT_THROW((void)parse_flags(cmd("batch"),
                                 {"batch", "b03s", "--retries", "-1"}, 1),
               std::invalid_argument);
  EXPECT_THROW((void)parse_flags(cmd("identify"),
                                 {"identify", "b03s", "--cache-entries=-2"},
                                 1),
               std::invalid_argument);
  EXPECT_THROW((void)parse_flags(cmd("identify"),
                                 {"identify", "b03s", "--depth", "-3"}, 1),
               std::invalid_argument);
}

TEST(CliOptions, NumericFlagsRejectTrailingJunkEmptyAndOverflow) {
  try {
    (void)parse_flags(cmd("identify"),
                      {"identify", "b03s", "--depth", "3abc"}, 1);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("not a decimal digit"),
              std::string::npos)
        << error.what();
  }
  EXPECT_THROW((void)parse_flags(cmd("identify"),
                                 {"identify", "b03s", "--timeout="}, 1),
               std::invalid_argument);  // empty value
  try {
    (void)parse_flags(
        cmd("identify"),
        {"identify", "b03s", "--timeout", "99999999999999999999999999"}, 1);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("value out of range"),
              std::string::npos)
        << error.what();
  }
}

TEST(CliOptions, ServeAndClientCommandsParse) {
  const ParsedFlags serve = parse_flags(
      cmd("serve"), {"serve", "--listen", "127.0.0.1:0", "--max-queue", "8",
                     "--max-inflight", "2", "--idle-timeout", "1000",
                     "--drain-timeout", "2000"},
      1);
  EXPECT_EQ(serve.listen, "127.0.0.1:0");
  EXPECT_EQ(serve.max_queue, 8u);
  EXPECT_EQ(serve.max_inflight, 2u);
  EXPECT_EQ(serve.idle_timeout_ms, 1000u);
  EXPECT_EQ(serve.drain_timeout_ms, 2000u);

  const ParsedFlags client = parse_flags(
      cmd("client"), {"client", "identify", "b03s", "--connect",
                      "127.0.0.1:4821", "--id", "r1"},
      1);
  EXPECT_EQ(client.connect, "127.0.0.1:4821");
  EXPECT_EQ(client.request_id, "r1");
  EXPECT_EQ(client.positional,
            (std::vector<std::string>{"identify", "b03s"}));

  // Queue bound 0 is legal (shed everything); zero workers is not.
  EXPECT_EQ(*parse_flags(cmd("serve"), {"serve", "--max-queue", "0"}, 1)
                 .max_queue,
            0u);
  EXPECT_THROW(
      (void)parse_flags(cmd("serve"), {"serve", "--max-inflight", "0"}, 1),
      std::invalid_argument);
}

TEST(CliOptions, BatchCompactJournalFlagParses) {
  const ParsedFlags flags = parse_flags(
      cmd("batch"),
      {"batch", "b03s", "--resume", "j.jsonl", "--compact-journal"}, 1);
  EXPECT_TRUE(flags.compact_journal);
  EXPECT_EQ(flags.resume, "j.jsonl");
}

TEST(CliOptions, IsolationFlagsParse) {
  const ParsedFlags batch = parse_flags(
      cmd("batch"),
      {"batch", "b03s", "--isolate=4", "--worker-mem", "512", "--worker-cpu",
       "10", "--worker-wall", "500", "--crash-retries", "3"},
      1);
  EXPECT_TRUE(batch.isolate);
  EXPECT_EQ(batch.isolate_workers, 4u);
  EXPECT_EQ(batch.worker_mem_mb, 512u);
  EXPECT_EQ(batch.worker_cpu_s, 10u);
  EXPECT_EQ(batch.worker_wall_ms, 500u);
  EXPECT_EQ(batch.crash_retries, 3u);

  // Bare --isolate: pool with the default worker count.
  const ParsedFlags bare = parse_flags(cmd("batch"), {"batch", "b03s",
                                                      "--isolate"}, 1);
  EXPECT_TRUE(bare.isolate);
  EXPECT_FALSE(bare.isolate_workers.has_value());

  const ParsedFlags serve = parse_flags(
      cmd("serve"), {"serve", "--isolate", "--max-request-bytes", "1024"}, 1);
  EXPECT_TRUE(serve.isolate);
  EXPECT_EQ(serve.max_request_bytes, 1024u);
}

TEST(CliOptions, IsolationFlagsRejectUselessValues) {
  EXPECT_THROW(
      (void)parse_flags(cmd("batch"), {"batch", "b03s", "--isolate=0"}, 1),
      std::invalid_argument);
  EXPECT_THROW(
      (void)parse_flags(cmd("batch"), {"batch", "b03s", "--isolate=two"}, 1),
      std::invalid_argument);
  EXPECT_THROW((void)parse_flags(
                   cmd("batch"), {"batch", "b03s", "--crash-retries", "0"}, 1),
               std::invalid_argument);
  EXPECT_THROW(
      (void)parse_flags(cmd("serve"), {"serve", "--max-request-bytes", "0"},
                        1),
      std::invalid_argument);
  // --crash-retries is batch-only (serve quarantines per request, there is
  // no retry loop to configure).
  EXPECT_THROW(
      (void)parse_flags(cmd("serve"), {"serve", "--crash-retries", "2"}, 1),
      std::invalid_argument);
}

TEST(CliOptions, WorkerCommandParsesButIsHiddenFromUsage) {
  const CommandSpec* worker = find_command("worker");
  ASSERT_NE(worker, nullptr);
  EXPECT_TRUE(worker->hidden);
  const ParsedFlags flags =
      parse_flags(*worker, {"worker", "--depth", "4", "--retries", "2"}, 1);
  EXPECT_EQ(flags.depth, 4u);
  EXPECT_EQ(flags.retries, 2u);
  // The usage text never advertises the internal mode.
  EXPECT_EQ(usage().find("(internal)"), std::string::npos);
}

TEST(CliOptions, UsageListsEveryExitCode) {
  const std::string text = usage();
  // The exit-code lines are generated from the ExitCode enum, so each code's
  // name and value must appear.
  for (const char* needle :
       {"0 ok", "2 usage", "5 deadline", "6 drained", "7 drain-timeout",
        "8 overloaded", "9 worker-crashed", "130 interrupted"})
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
}

TEST(CliOptions, UsageIsGeneratedFromTheTables) {
  const std::string text = usage();
  for (const CommandSpec& command : command_table())
    EXPECT_NE(text.find(command.name), std::string::npos) << command.name;
  for (const FlagSpec& flag : flag_table())
    EXPECT_NE(text.find(flag.name), std::string::npos) << flag.name;
  EXPECT_NE(text.find("exit codes"), std::string::npos);
  EXPECT_NE(text.find("--version"), std::string::npos);
  EXPECT_NE(text.find("--keep-going"), std::string::npos);
}

}  // namespace
}  // namespace netrev::cli
