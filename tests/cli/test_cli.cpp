#include "cli/cli.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

namespace netrev::cli {
namespace {

struct CliRun {
  int exit_code = 0;
  std::string out;
  std::string err;
};

CliRun run(std::vector<std::string> args) {
  std::ostringstream out, err;
  CliRun result;
  result.exit_code = run_cli(args, out, err);
  result.out = out.str();
  result.err = err.str();
  return result;
}

// A temp directory per test binary run.
std::string temp_dir() {
  const auto dir =
      std::filesystem::temp_directory_path() / "netrev_cli_test";
  std::filesystem::create_directories(dir);
  return dir.string();
}

TEST(Cli, NoArgsPrintsUsage) {
  const CliRun r = run({});
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.err.find("usage:"), std::string::npos);
}

TEST(Cli, HelpSucceeds) {
  const CliRun r = run({"help"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("identify"), std::string::npos);
}

TEST(Cli, UnknownCommandFails) {
  const CliRun r = run({"frobnicate"});
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(Cli, StatsOnFamilyBenchmark) {
  const CliRun r = run({"stats", "b03s"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("gates=169"), std::string::npos);
  EXPECT_NE(r.out.find("0 error(s)"), std::string::npos);
}

TEST(Cli, StatsOnMissingFileFails) {
  const CliRun r = run({"stats", "/nonexistent.v"});
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.err.find("error:"), std::string::npos);
}

TEST(Cli, ReferenceListsWords) {
  const CliRun r = run({"reference", "b03s"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("7 reference word(s)"), std::string::npos);
  EXPECT_NE(r.out.find("CODA0_reg"), std::string::npos);
}

TEST(Cli, IdentifyTextOutput) {
  const CliRun r = run({"identify", "b03s"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("1 control signal(s)"), std::string::npos);
  EXPECT_NE(r.out.find("unified via"), std::string::npos);
}

TEST(Cli, IdentifyJsonOutput) {
  const CliRun r = run({"identify", "b03s", "--json"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.out.find("found"), std::string::npos);  // no prose
  EXPECT_NE(r.out.find("\"control_signals\""), std::string::npos);
}

TEST(Cli, IdentifyBaseMode) {
  const CliRun r = run({"identify", "b03s", "--base"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("shape hashing"), std::string::npos);
}

TEST(Cli, IdentifyWithOptions) {
  const CliRun r =
      run({"identify", "b03s", "--depth", "3", "--max-assign", "1",
           "--cross-group"});
  EXPECT_EQ(r.exit_code, 0);
}

TEST(Cli, IdentifyRejectsBadFlag) {
  const CliRun r = run({"identify", "b03s", "--bogus"});
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.err.find("unknown flag"), std::string::npos);
}

TEST(Cli, GenerateWritesFiles) {
  const std::string dir = temp_dir();
  const CliRun r = run({"generate", "b03s", "-o", dir});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_TRUE(std::filesystem::exists(dir + "/b03s.v"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/b03s.bench"));
}

TEST(Cli, IdentifyParsesGeneratedVerilogFile) {
  const std::string dir = temp_dir();
  run({"generate", "b08s", "-o", dir});
  const CliRun r = run({"identify", dir + "/b08s.v"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("3 control signal(s)"), std::string::npos);
}

TEST(Cli, IdentifyParsesGeneratedBenchFile) {
  const std::string dir = temp_dir();
  run({"generate", "b08s", "-o", dir});
  const CliRun r = run({"identify", dir + "/b08s.bench", "--base"});
  EXPECT_EQ(r.exit_code, 0);
}

TEST(Cli, ReduceWithAssignment) {
  const CliRun r = run({"reduce", "b03s", "--assign", "U201=0"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("-> "), std::string::npos);
}

TEST(Cli, ReduceWritesVerilog) {
  const std::string path = temp_dir() + "/reduced.v";
  const CliRun r = run({"reduce", "b03s", "--assign", "U201=0", "-o", path});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_TRUE(std::filesystem::exists(path));
  const CliRun stats = run({"stats", path});
  EXPECT_EQ(stats.exit_code, 0);
}

TEST(Cli, ReduceRejectsMalformedAssign) {
  EXPECT_EQ(run({"reduce", "b03s", "--assign", "U201"}).exit_code, 1);
  EXPECT_EQ(run({"reduce", "b03s", "--assign", "U201=2"}).exit_code, 1);
  EXPECT_EQ(run({"reduce", "b03s", "--assign", "NOPE=0"}).exit_code, 1);
  EXPECT_EQ(run({"reduce", "b03s"}).exit_code, 1);
}

TEST(Cli, EvaluateShowsPerWordOutcomes) {
  const CliRun r = run({"evaluate", "b08s"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("full: 4"), std::string::npos);
  EXPECT_NE(r.out.find("MISSING  STATO_reg"), std::string::npos);
}

TEST(Cli, EvaluateBaseModeFindsFewer) {
  const CliRun ours = run({"evaluate", "b08s"});
  const CliRun base = run({"evaluate", "b08s", "--base"});
  EXPECT_EQ(base.exit_code, 0);
  EXPECT_NE(base.out.find("full: 2"), std::string::npos);
  EXPECT_NE(ours.out.find("full: 4"), std::string::npos);
}

TEST(Cli, EvaluateJson) {
  const CliRun r = run({"evaluate", "b08s", "--json"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("\"fully_found\":4"), std::string::npos);
}

TEST(Cli, EvaluateFailsWithoutReferenceNames) {
  // A design whose flops have no indexed names.
  const std::string path = temp_dir() + "/noref.v";
  std::ofstream(path) << "module noref (d, q);\n input d;\n output q;\n"
                         " DFF r0 (q, d);\nendmodule\n";
  const CliRun r = run({"evaluate", path});
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.err.find("no reference words"), std::string::npos);
}

TEST(Cli, PropagateDerivesCandidates) {
  const CliRun r = run({"propagate", "b03s"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("candidate word(s)"), std::string::npos);
  EXPECT_NE(r.out.find("[leaves]"), std::string::npos);
}

TEST(Cli, ScanInsertsChain) {
  const std::string path = temp_dir() + "/scanned.v";
  const CliRun r = run({"scan", "b03s", "-o", path});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("30 scan mux(es)"), std::string::npos);
  const CliRun stats = run({"stats", path});
  EXPECT_EQ(stats.exit_code, 0);
}

TEST(Cli, IdentifyTraceNarratesDecisions) {
  const CliRun r = run({"identify", "b03s", "--trace"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("control signals:"), std::string::npos);
  EXPECT_NE(r.out.find("UNIFIED via"), std::string::npos);
}

TEST(Cli, DotEmitsGraph) {
  const CliRun r = run({"dot", "b03s"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("digraph netlist"), std::string::npos);
  EXPECT_NE(r.out.find("fillcolor="), std::string::npos);
}

TEST(Cli, DotWritesFile) {
  const std::string path = temp_dir() + "/g.dot";
  const CliRun r = run({"dot", "b03s", "--depth", "4", "-o", path});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_TRUE(std::filesystem::exists(path));
}

TEST(Cli, TableSingleBenchmark) {
  const CliRun r = run({"table", "b03s"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("b03s"), std::string::npos);
  EXPECT_NE(r.out.find("85.7"), std::string::npos);
}

TEST(Cli, TableJson) {
  const CliRun r = run({"table", "b03s", "--json"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("\"benchmark\":\"b03s\""), std::string::npos);
}

}  // namespace
}  // namespace netrev::cli
