#include "cli/cli.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>
#include <thread>

#include "pipeline/artifact_cache.h"

namespace netrev::cli {
namespace {

struct CliRun {
  int exit_code = 0;
  std::string out;
  std::string err;
};

CliRun run(std::vector<std::string> args) {
  std::ostringstream out, err;
  CliRun result;
  result.exit_code = run_cli(args, out, err);
  result.out = out.str();
  result.err = err.str();
  return result;
}

// A temp directory per test binary run.
std::string temp_dir() {
  const auto dir =
      std::filesystem::temp_directory_path() / "netrev_cli_test";
  std::filesystem::create_directories(dir);
  return dir.string();
}

TEST(Cli, NoArgsPrintsUsage) {
  const CliRun r = run({});
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.err.find("usage:"), std::string::npos);
}

TEST(Cli, HelpSucceeds) {
  const CliRun r = run({"help"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("identify"), std::string::npos);
}

TEST(Cli, UnknownCommandFails) {
  const CliRun r = run({"frobnicate"});
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(Cli, StatsOnFamilyBenchmark) {
  const CliRun r = run({"stats", "b03s"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("gates=169"), std::string::npos);
  EXPECT_NE(r.out.find("0 error(s)"), std::string::npos);
}

TEST(Cli, StatsOnMissingFileFails) {
  const CliRun r = run({"stats", "/nonexistent.v"});
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.err.find("error:"), std::string::npos);
}

TEST(Cli, ReferenceListsWords) {
  const CliRun r = run({"reference", "b03s"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("7 reference word(s)"), std::string::npos);
  EXPECT_NE(r.out.find("CODA0_reg"), std::string::npos);
}

TEST(Cli, IdentifyTextOutput) {
  const CliRun r = run({"identify", "b03s"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("1 control signal(s)"), std::string::npos);
  EXPECT_NE(r.out.find("unified via"), std::string::npos);
}

TEST(Cli, IdentifyJsonOutput) {
  const CliRun r = run({"identify", "b03s", "--json"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.out.find("found"), std::string::npos);  // no prose
  EXPECT_NE(r.out.find("\"control_signals\""), std::string::npos);
}

TEST(Cli, IdentifyBaseMode) {
  const CliRun r = run({"identify", "b03s", "--base"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("shape hashing"), std::string::npos);
}

TEST(Cli, IdentifyWithOptions) {
  const CliRun r =
      run({"identify", "b03s", "--depth", "3", "--max-assign", "1",
           "--cross-group"});
  EXPECT_EQ(r.exit_code, 0);
}

TEST(Cli, IdentifyRejectsBadFlag) {
  const CliRun r = run({"identify", "b03s", "--bogus"});
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.err.find("unknown flag"), std::string::npos);
}

TEST(Cli, GenerateWritesFiles) {
  const std::string dir = temp_dir();
  const CliRun r = run({"generate", "b03s", "-o", dir});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_TRUE(std::filesystem::exists(dir + "/b03s.v"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/b03s.bench"));
}

TEST(Cli, IdentifyParsesGeneratedVerilogFile) {
  const std::string dir = temp_dir();
  run({"generate", "b08s", "-o", dir});
  const CliRun r = run({"identify", dir + "/b08s.v"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("3 control signal(s)"), std::string::npos);
}

TEST(Cli, IdentifyParsesGeneratedBenchFile) {
  const std::string dir = temp_dir();
  run({"generate", "b08s", "-o", dir});
  const CliRun r = run({"identify", dir + "/b08s.bench", "--base"});
  EXPECT_EQ(r.exit_code, 0);
}

TEST(Cli, ReduceWithAssignment) {
  const CliRun r = run({"reduce", "b03s", "--assign", "U201=0"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("-> "), std::string::npos);
}

TEST(Cli, ReduceWritesVerilog) {
  const std::string path = temp_dir() + "/reduced.v";
  const CliRun r = run({"reduce", "b03s", "--assign", "U201=0", "-o", path});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_TRUE(std::filesystem::exists(path));
  const CliRun stats = run({"stats", path});
  EXPECT_EQ(stats.exit_code, 0);
}

TEST(Cli, ReduceRejectsMalformedAssign) {
  // Malformed flag syntax is a usage error (2); a well-formed assignment to
  // a net the design does not have is an input error (1).
  EXPECT_EQ(run({"reduce", "b03s", "--assign", "U201"}).exit_code, 2);
  EXPECT_EQ(run({"reduce", "b03s", "--assign", "U201=2"}).exit_code, 2);
  EXPECT_EQ(run({"reduce", "b03s", "--assign", "NOPE=0"}).exit_code, 1);
  EXPECT_EQ(run({"reduce", "b03s"}).exit_code, 2);
}

TEST(Cli, LiftEmitsVerifiedSchemaV1Document) {
  const CliRun r = run({"lift", "b03s"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.out.rfind("{\"schema_version\":1,", 0), 0u)
      << r.out.substr(0, 60);
  EXPECT_NE(r.out.find("\"verdict\":\"equivalent\""), std::string::npos);
  EXPECT_NE(r.out.find("\"ops\":["), std::string::npos);
}

TEST(Cli, LiftNoVerifyReportsUnchecked) {
  const CliRun r = run({"lift", "b03s", "--no-verify"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("\"verdict\":\"unchecked\""), std::string::npos);
}

TEST(Cli, LiftVectorsFlagRejectsZero) {
  const CliRun r = run({"lift", "b03s", "--vectors", "0"});
  EXPECT_EQ(r.exit_code, 2);
}

TEST(Cli, LiftWritesOutputFile) {
  const std::string path = temp_dir() + "/lifted.json";
  const CliRun r = run({"lift", "b03s", "-o", path});
  EXPECT_EQ(r.exit_code, 0);
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("\"verdict\":\"equivalent\""), std::string::npos);
}

TEST(Cli, EvaluateShowsPerWordOutcomes) {
  const CliRun r = run({"evaluate", "b08s"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("full: 4"), std::string::npos);
  EXPECT_NE(r.out.find("MISSING  STATO_reg"), std::string::npos);
}

TEST(Cli, EvaluateBaseModeFindsFewer) {
  const CliRun ours = run({"evaluate", "b08s"});
  const CliRun base = run({"evaluate", "b08s", "--base"});
  EXPECT_EQ(base.exit_code, 0);
  EXPECT_NE(base.out.find("full: 2"), std::string::npos);
  EXPECT_NE(ours.out.find("full: 4"), std::string::npos);
}

TEST(Cli, EvaluateJson) {
  const CliRun r = run({"evaluate", "b08s", "--json"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("\"fully_found\":4"), std::string::npos);
}

TEST(Cli, EvaluateFailsWithoutReferenceNames) {
  // A design whose flops have no indexed names.
  const std::string path = temp_dir() + "/noref.v";
  std::ofstream(path) << "module noref (d, q);\n input d;\n output q;\n"
                         " DFF r0 (q, d);\nendmodule\n";
  const CliRun r = run({"evaluate", path});
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.err.find("no reference words"), std::string::npos);
}

TEST(Cli, PropagateDerivesCandidates) {
  const CliRun r = run({"propagate", "b03s"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("candidate word(s)"), std::string::npos);
  EXPECT_NE(r.out.find("[leaves]"), std::string::npos);
}

TEST(Cli, ScanInsertsChain) {
  const std::string path = temp_dir() + "/scanned.v";
  const CliRun r = run({"scan", "b03s", "-o", path});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("30 scan mux(es)"), std::string::npos);
  const CliRun stats = run({"stats", path});
  EXPECT_EQ(stats.exit_code, 0);
}

TEST(Cli, IdentifyTraceNarratesDecisions) {
  const CliRun r = run({"identify", "b03s", "--trace"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("control signals:"), std::string::npos);
  EXPECT_NE(r.out.find("UNIFIED via"), std::string::npos);
}

TEST(Cli, DotEmitsGraph) {
  const CliRun r = run({"dot", "b03s"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("digraph netlist"), std::string::npos);
  EXPECT_NE(r.out.find("fillcolor="), std::string::npos);
}

TEST(Cli, DotWritesFile) {
  const std::string path = temp_dir() + "/g.dot";
  const CliRun r = run({"dot", "b03s", "--depth", "4", "-o", path});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_TRUE(std::filesystem::exists(path));
}

TEST(Cli, TableSingleBenchmark) {
  const CliRun r = run({"table", "b03s"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("b03s"), std::string::npos);
  EXPECT_NE(r.out.find("85.7"), std::string::npos);
}

TEST(Cli, TableJson) {
  const CliRun r = run({"table", "b03s", "--json"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("\"benchmark\":\"b03s\""), std::string::npos);
}

// --- error paths and the permissive pipeline -------------------------------

// A damaged .bench file: one malformed gate line in an otherwise fine design.
std::string write_damaged_bench() {
  const std::string path = temp_dir() + "/damaged.bench";
  std::ofstream(path) << "INPUT(a)\nINPUT(b)\nOUTPUT(q)\n"
                         "n1 = NAND(a, b)\nn2 = BOGUS(n1)\nq = NOT(n1)\n";
  return path;
}

TEST(Cli, ErrorsGoToErrStreamNotOut) {
  const CliRun r = run({"stats", "/nonexistent.bench"});
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_TRUE(r.out.empty());
  EXPECT_NE(r.err.find("error:"), std::string::npos);
}

TEST(Cli, UsageDocumentsExitCodes) {
  const CliRun r = run({"help"});
  EXPECT_NE(r.out.find("exit codes"), std::string::npos);
  EXPECT_NE(r.out.find("--permissive"), std::string::npos);
  EXPECT_NE(r.out.find("--diag-json"), std::string::npos);
  EXPECT_NE(r.out.find("--max-errors"), std::string::npos);
}

TEST(Cli, MalformedNetlistStrictFails) {
  const std::string path = write_damaged_bench();
  const CliRun r = run({"stats", path});
  EXPECT_EQ(r.exit_code, 1);
  // Strict errors carry a real position.
  EXPECT_NE(r.err.find("line 5"), std::string::npos);
  EXPECT_NE(r.err.find("column"), std::string::npos);
}

TEST(Cli, MalformedNetlistPermissiveRecoversWithExitCode3) {
  const std::string path = write_damaged_bench();
  const CliRun r = run({"stats", path, "--permissive"});
  EXPECT_EQ(r.exit_code, 3);  // recovered with warnings
  EXPECT_NE(r.out.find("gates="), std::string::npos);
  EXPECT_TRUE(r.err.empty());
}

TEST(Cli, DiagJsonPrintsDiagnostics) {
  const std::string path = write_damaged_bench();
  const CliRun r = run({"stats", path, "--permissive", "--diag-json"});
  EXPECT_EQ(r.exit_code, 3);
  EXPECT_NE(r.out.find("\"diagnostics\":["), std::string::npos);
  EXPECT_NE(r.out.find("\"line\":5"), std::string::npos);
}

TEST(Cli, PermissiveCleanInputStillExitsZero) {
  // A design with nothing to recover or repair: every net is read, every
  // net is driven.  (Family benchmarks carry a few fanout-free gates that
  // repair legitimately prunes, so they exit 3 under --permissive.)
  const std::string path = temp_dir() + "/clean.bench";
  std::ofstream(path) << "INPUT(a)\nINPUT(b)\nOUTPUT(q)\n"
                         "n1 = NAND(a, b)\nq = NOT(n1)\n";
  const CliRun r = run({"stats", path, "--permissive"});
  EXPECT_EQ(r.exit_code, 0);
}

TEST(Cli, UnusableInputExitsFour) {
  // Nothing recoverable: pure garbage is not a netlist.
  const std::string path = temp_dir() + "/garbage.v";
  std::ofstream(path) << "this is not verilog at all ((((\n%%%%\n";
  const CliRun strict = run({"stats", path});
  EXPECT_EQ(strict.exit_code, 1);
  const CliRun permissive = run({"stats", path, "--permissive"});
  // Either nothing parses (empty netlist is valid => exit 3) or the input is
  // rejected as unusable (exit 4); it must never exit 0 or crash.
  EXPECT_TRUE(permissive.exit_code == 3 || permissive.exit_code == 4)
      << "exit " << permissive.exit_code;
}

TEST(Cli, PermissiveMissingFileIsUnusable) {
  const CliRun r = run({"stats", "/nonexistent.bench", "--permissive"});
  EXPECT_EQ(r.exit_code, 4);
  EXPECT_NE(r.err.find("error:"), std::string::npos);
}

TEST(Cli, MaxErrorsBoundsDiagnostics) {
  // Many bad lines; --max-errors 2 makes the parser give up early.
  const std::string path = temp_dir() + "/manybad.bench";
  std::ofstream file(path);
  file << "INPUT(a)\n";
  for (int i = 0; i < 50; ++i) file << "x" << i << " = BAD(a)\n";
  file.close();
  const CliRun r =
      run({"stats", path, "--permissive", "--max-errors", "2", "--diag-json"});
  EXPECT_NE(r.out.find("giving up"), std::string::npos);
}

TEST(Cli, PermissiveIdentifyRunsOnDamagedDesign) {
  // End-to-end: generate, damage one line, identify permissively.
  const std::string dir = temp_dir();
  run({"generate", "b03s", "-o", dir});
  std::ifstream in(dir + "/b03s.bench");
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  const std::size_t pos = text.find("U201");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 4, "U2#1");
  const std::string damaged = dir + "/b03s_damaged.bench";
  std::ofstream(damaged) << text;
  const CliRun r = run({"identify", damaged, "--permissive"});
  EXPECT_EQ(r.exit_code, 3);
  EXPECT_NE(r.out.find("word(s)"), std::string::npos);
}

// --- lint ------------------------------------------------------------------

std::string write_file(const std::string& name, const std::string& text) {
  const std::string path = temp_dir() + "/" + name;
  std::ofstream(path) << text;
  return path;
}

TEST(Cli, LintCleanFamilyBenchmarksHaveNoFindings) {
  for (const char* benchmark : {"b03s", "b08s", "b13s"}) {
    const CliRun r = run({"lint", benchmark, "--fail-on", "warning"});
    EXPECT_EQ(r.exit_code, 0) << benchmark << "\n" << r.out;
    EXPECT_NE(r.out.find("0 finding(s)"), std::string::npos) << benchmark;
  }
}

TEST(Cli, LintFlagsSeededCombinationalCycle) {
  const std::string path = write_file("cycle.bench",
                                      "INPUT(a)\n"
                                      "OUTPUT(y)\n"
                                      "x = AND(a, y)\n"
                                      "y = BUF(x)\n");
  const CliRun r = run({"lint", path});
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.out.find("error[comb-cycle]"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("x -> y -> x"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("fix:"), std::string::npos) << r.out;
}

TEST(Cli, LintFlagsSeededMultiDrivenNet) {
  const std::string path = write_file("multidrive.bench",
                                      "INPUT(a)\n"
                                      "INPUT(b)\n"
                                      "OUTPUT(y)\n"
                                      "y = AND(a, b)\n"
                                      "y = OR(a, b)\n");
  const CliRun r = run({"lint", path});
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.out.find("error[multi-driven]"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("'y' has 2 drivers"), std::string::npos) << r.out;
}

TEST(Cli, LintFlagsSeededDeadLogicOnlyAtWarningThreshold) {
  const std::string path = write_file("dead.bench",
                                      "INPUT(a)\n"
                                      "INPUT(b)\n"
                                      "OUTPUT(y)\n"
                                      "y = AND(a, b)\n"
                                      "dead = NOT(a)\n");
  const CliRun relaxed = run({"lint", path});
  EXPECT_EQ(relaxed.exit_code, 0);  // warnings only, default --fail-on=error
  EXPECT_NE(relaxed.out.find("warning[dead-logic]"), std::string::npos);

  const CliRun strict = run({"lint", path, "--fail-on=warning"});
  EXPECT_EQ(strict.exit_code, 1);
}

TEST(Cli, LintRulesFilterRestrictsTheRun) {
  const std::string path = write_file("dead2.bench",
                                      "INPUT(a)\n"
                                      "INPUT(b)\n"
                                      "OUTPUT(y)\n"
                                      "y = AND(a, b)\n"
                                      "dead = NOT(a)\n");
  const CliRun r = run({"lint", path, "--rules", "comb-cycle,multi-driven"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("0 finding(s)"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("2 rule(s) run"), std::string::npos) << r.out;
}

TEST(Cli, LintUnknownRuleIsAnError) {
  const CliRun r = run({"lint", "b03s", "--rules", "bogus"});
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.err.find("unknown analysis rule"), std::string::npos);
}

TEST(Cli, LintBadFailOnValueIsAnError) {
  const CliRun r = run({"lint", "b03s", "--fail-on", "fatal"});
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.err.find("--fail-on expects"), std::string::npos);
}

TEST(Cli, LintUnknownRuleErrorListsTheKnownIds) {
  const CliRun r = run({"lint", "b03s", "--rules", "const-net,typo-rule"});
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.err.find("unknown analysis rule 'typo-rule'"),
            std::string::npos);
  EXPECT_NE(r.err.find("known rules:"), std::string::npos);
  EXPECT_NE(r.err.find("mixed-domain-word"), std::string::npos);
}

TEST(Cli, LintListRulesPrintsTheRegistry) {
  const CliRun r = run({"lint", "--list-rules"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("12 rule(s)"), std::string::npos) << r.out;
  for (const char* id : {"comb-cycle", "const-net", "stuck-ff",
                         "redundant-mux", "mixed-domain-word"})
    EXPECT_NE(r.out.find(id), std::string::npos) << id;
  EXPECT_NE(r.out.find("warning"), std::string::npos);
  EXPECT_NE(r.out.find("error"), std::string::npos);
}

TEST(Cli, LintListRulesRejectsADesignArgument) {
  const CliRun r = run({"lint", "b03s", "--list-rules"});
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.err.find("--list-rules"), std::string::npos);
}

TEST(Cli, LintDataflowRulesRunCleanOnFamilies) {
  const CliRun r = run({"lint", "b03s", "--rules",
                        "const-net,stuck-ff,redundant-mux,mixed-domain-word",
                        "--fail-on=warning"});
  EXPECT_EQ(r.exit_code, 0) << r.out << r.err;
  EXPECT_NE(r.out.find("0 finding(s)"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("4 rule(s) run"), std::string::npos) << r.out;
}

TEST(Cli, IdentifyUseDataflowMatchesDefaultOutput) {
  const CliRun plain = run({"identify", "b04s", "--json"});
  const CliRun pruned = run({"identify", "b04s", "--json", "--use-dataflow"});
  EXPECT_EQ(plain.exit_code, 0);
  EXPECT_EQ(pruned.exit_code, 0);
  EXPECT_EQ(plain.out, pruned.out);  // no derived constants in the family
}

TEST(Cli, UseDataflowIsRejectedWhereItHasNoMeaning) {
  const CliRun r = run({"stats", "b03s", "--use-dataflow"});
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.err.find("not valid"), std::string::npos);
}

TEST(Cli, LintDiagJsonCarriesFindings) {
  const std::string path = write_file("cycle2.bench",
                                      "INPUT(a)\n"
                                      "OUTPUT(y)\n"
                                      "x = AND(a, y)\n"
                                      "y = BUF(x)\n");
  const CliRun r = run({"lint", path, "--diag-json"});
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.out.find("\"diagnostics\""), std::string::npos);
  EXPECT_NE(r.out.find("[comb-cycle]"), std::string::npos);
}

TEST(Cli, LintUnreadableFileIsUnusableInput) {
  const CliRun r = run({"lint", "/nonexistent/design.bench"});
  EXPECT_EQ(r.exit_code, 4);
}

TEST(Cli, EvaluateTextIncludesAnalysisSummary) {
  const CliRun r = run({"evaluate", "b03s"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("static analysis: 0 finding(s)"), std::string::npos)
      << r.out;
}

TEST(Cli, EvaluateJsonWrapsEvaluationAndAnalysis) {
  const CliRun r = run({"evaluate", "b03s", "--json"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.out.rfind("{\"schema_version\":1,\"evaluation\":", 0), 0u)
      << r.out.substr(0, 80);
  EXPECT_NE(r.out.find("\"analysis\":{\"schema_version\":1,\"findings\":[]"),
            std::string::npos)
      << r.out;
}

TEST(Cli, PermissiveLoadBreaksCyclesAndIdentifyProceeds) {
  const std::string path = write_file("cycle3.bench",
                                      "INPUT(a)\n"
                                      "OUTPUT(y)\n"
                                      "x = AND(a, y)\n"
                                      "y = BUF(x)\n");
  // Strict load: the identify pre-pass rejects the cycle.
  const CliRun strict = run({"identify", path});
  EXPECT_EQ(strict.exit_code, 1);
  EXPECT_NE(strict.err.find("combinational cycle"), std::string::npos);

  // Permissive load: the cycle is cut (with a diagnostic) and identify runs.
  const CliRun permissive = run({"identify", path, "--permissive"});
  EXPECT_EQ(permissive.exit_code, 3);
  EXPECT_NE(permissive.out.find("word(s)"), std::string::npos);
}

TEST(Cli, ProfilePrintsStageTreeAndCounters) {
  // Earlier tests already identified b03s through the process-global artifact
  // cache; clear it so this run recomputes and the stage counters (e.g.
  // cones_hashed) are populated.
  pipeline::ArtifactCache::global().clear();
  const CliRun r = run({"identify", "b03s", "--profile"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("profile (total"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("- load:"), std::string::npos);
  EXPECT_NE(r.out.find("- identify:"), std::string::npos);
  EXPECT_NE(r.out.find("cones_hashed:"), std::string::npos);
}

TEST(Cli, ProfileJsonEmitsStageTree) {
  const CliRun r = run({"evaluate", "b03s", "--profile=json"});
  EXPECT_EQ(r.exit_code, 0);
  // The profile JSON is the last line of stdout.
  const auto newline = r.out.find_last_of('\n', r.out.size() - 2);
  const std::string last = r.out.substr(newline + 1);
  EXPECT_EQ(last.rfind("{\"total_ns\":", 0), 0u) << last.substr(0, 80);
  EXPECT_NE(last.find("\"name\":\"identify\""), std::string::npos);
  EXPECT_NE(last.find("\"counters\":{"), std::string::npos);
}

TEST(Cli, JobsFlagAcceptedAndOutputMatchesSerial) {
  const CliRun serial = run({"identify", "b04s", "--jobs", "1"});
  const CliRun parallel = run({"identify", "b04s", "-j", "4"});
  EXPECT_EQ(serial.exit_code, 0);
  EXPECT_EQ(parallel.exit_code, 0);
  EXPECT_EQ(serial.out, parallel.out);
}

TEST(Cli, JobsZeroRejected) {
  const CliRun r = run({"identify", "b03s", "--jobs", "0"});
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.err.find("--jobs"), std::string::npos);
}

// --- version, table-driven flags, and batch --------------------------------

TEST(Cli, VersionFlagPrintsVersionEverywhere) {
  const CliRun top = run({"--version"});
  EXPECT_EQ(top.exit_code, 0);
  EXPECT_EQ(top.out.rfind("netrev ", 0), 0u) << top.out;
  // As a global flag it works on any subcommand, before any work happens.
  const CliRun sub = run({"identify", "b03s", "--version"});
  EXPECT_EQ(sub.exit_code, 0);
  EXPECT_EQ(sub.out, top.out);
}

TEST(Cli, UsageListsBatchAndGlobalFlags) {
  const CliRun r = run({"help"});
  EXPECT_NE(r.out.find("batch"), std::string::npos);
  EXPECT_NE(r.out.find("--keep-going"), std::string::npos);
  EXPECT_NE(r.out.find("--version"), std::string::npos);
  EXPECT_NE(r.out.find("--jobs"), std::string::npos);
}

TEST(Cli, FlagNotValidForCommandIsRejected) {
  const CliRun r = run({"stats", "b03s", "--depth", "3"});
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.err.find("not valid for"), std::string::npos) << r.err;
}

TEST(Cli, BatchRunsFamiliesAndPrintsSummary) {
  const CliRun r = run({"batch", "b03s", "b04s"});
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("b03s"), std::string::npos);
  EXPECT_NE(r.out.find("batch: 2 total, 2 ok"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("cache:"), std::string::npos);
}

TEST(Cli, BatchJsonEmbedsTheSingleRunIdentifyBytes) {
  const CliRun batch = run({"batch", "b03s", "--json"});
  EXPECT_EQ(batch.exit_code, 0) << batch.err;
  const CliRun single = run({"identify", "b03s", "--json"});
  std::string body = single.out;
  if (!body.empty() && body.back() == '\n') body.pop_back();
  EXPECT_NE(batch.out.find(body), std::string::npos)
      << "batch JSON does not embed the identify --json bytes";
  EXPECT_NE(batch.out.find("\"version\":"), std::string::npos);
  EXPECT_NE(batch.out.find("\"summary\":"), std::string::npos);
}

TEST(Cli, BatchStopsOrKeepsGoingOnFailure) {
  const std::string missing = temp_dir() + "/no_such_input.bench";
  const CliRun stop = run({"batch", missing, "b03s"});
  EXPECT_EQ(stop.exit_code, 1);
  EXPECT_NE(stop.out.find("1 failed, 1 skipped"), std::string::npos)
      << stop.out;
  const CliRun keep = run({"batch", missing, "b03s", "--keep-going"});
  EXPECT_EQ(keep.exit_code, 1);
  EXPECT_NE(keep.out.find("1 ok, 1 failed, 0 skipped"), std::string::npos)
      << keep.out;
}

TEST(Cli, BatchWarmRerunIsByteIdenticalWithCacheHits) {
  // The acceptance gate: rerunning the same batch in one process must hit
  // the artifact cache without changing a byte of the JSON.
  const CliRun cold = run({"batch", "b04s", "b08s", "--json"});
  const CliRun warm = run({"batch", "b04s", "b08s", "--json", "--profile"});
  EXPECT_EQ(cold.exit_code, 0) << cold.err;
  EXPECT_EQ(warm.exit_code, 0) << warm.err;
  // The warm run prints the same JSON, then the profile after it.
  EXPECT_EQ(warm.out.rfind(cold.out, 0), 0u)
      << "warm batch JSON diverged from the cold run";
  const auto pos = warm.out.find("cache.hits:");
  ASSERT_NE(pos, std::string::npos) << warm.out;
  const int hits = std::atoi(warm.out.c_str() + pos + 11);
  EXPECT_GT(hits, 0) << warm.out;
}

TEST(Cli, BatchExpandsManifestFiles) {
  const std::string manifest = temp_dir() + "/cli_manifest.txt";
  std::ofstream(manifest) << "# two families\nb03s\nb04s\n";
  const CliRun r = run({"batch", manifest});
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("batch: 2 total, 2 ok"), std::string::npos) << r.out;
}

TEST(Cli, BatchRejectsEmptyGlob) {
  const CliRun r = run({"batch", temp_dir() + "/*.nope"});
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.err.find("glob matched no files"), std::string::npos) << r.err;
}

TEST(Cli, IdentifyOutputIsCommittedAtomically) {
  const std::string path = temp_dir() + "/identify_out.json";
  std::filesystem::remove(path);
  const CliRun r = run({"identify", "b03s", "--json", "--output", path});
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("wrote " + path), std::string::npos) << r.out;
  std::ifstream in(path);
  std::ostringstream content;
  content << in.rdbuf();
  const std::string text = content.str();
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.front(), '{');
  EXPECT_EQ(text.back(), '\n');
}

TEST(Cli, SigintDuringIdentifyLeavesNoPartialOutput) {
  // Satellite contract: Ctrl-C during a single-shot identify exits 130 and
  // leaves no partial --output file (the write is atomic temp+rename and
  // only happens after a complete render).  The raiser fires SIGINT every
  // millisecond; raises landing outside run_cli's guard window hit the
  // SIG_IGN installed here and are harmless.  Timing decides whether the
  // run is cancelled or completes — both outcomes must honor the contract.
  using SignalHandler = void (*)(int);
  SignalHandler previous = std::signal(SIGINT, SIG_IGN);
  const std::string path = temp_dir() + "/sigint_identify.json";
  std::filesystem::remove(path);

  std::atomic<bool> done{false};
  std::thread raiser([&] {
    while (!done.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      ::raise(SIGINT);
    }
  });
  const CliRun r = run({"identify", "b03s", "--json", "--output", path});
  done.store(true);
  raiser.join();
  std::signal(SIGINT, previous);

  if (r.exit_code == 130) {
    EXPECT_NE(r.err.find("operation cancelled"), std::string::npos) << r.err;
    EXPECT_FALSE(std::filesystem::exists(path))
        << "a cancelled identify must not leave a partial output file";
  } else {
    // The identify outran the first armed SIGINT: the file must be complete.
    EXPECT_EQ(r.exit_code, 0) << r.err;
    std::ifstream in(path);
    std::ostringstream content;
    content << in.rdbuf();
    ASSERT_FALSE(content.str().empty());
    EXPECT_EQ(content.str().front(), '{');
    EXPECT_EQ(content.str().back(), '\n');
  }
}

TEST(Cli, ServeDrainsOnSigterm) {
  // SIGTERM against a running serve must come back as a clean drain: exit
  // code 6 and the "drained" trailer on stdout.  SIG_IGN soaks any raise
  // that lands before cmd_serve installs its drain handler; the loop keeps
  // raising until the server thread exits.
  using SignalHandler = void (*)(int);
  SignalHandler previous = std::signal(SIGTERM, SIG_IGN);

  std::ostringstream out, err;
  std::atomic<int> rc{-1};
  std::thread server([&] {
    rc.store(run_cli({"serve", "--listen", "127.0.0.1:0", "--max-inflight",
                      "1"},
                     out, err));
  });
  while (rc.load() == -1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    ::raise(SIGTERM);
  }
  server.join();
  std::signal(SIGTERM, previous);

  EXPECT_EQ(rc.load(), 6);  // ExitCode::kDrained
  EXPECT_NE(out.str().find("netrev serve listening on 127.0.0.1:"),
            std::string::npos)
      << out.str();
  EXPECT_NE(out.str().find("netrev serve drained"), std::string::npos)
      << out.str();
  EXPECT_NE(err.str().find("drained cleanly"), std::string::npos) << err.str();
}

TEST(Cli, BatchCompactJournalRequiresResume) {
  const CliRun r = run({"batch", "b03s", "--compact-journal"});
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.err.find("--compact-journal needs --resume"), std::string::npos)
      << r.err;
}

TEST(Cli, BatchCompactJournalRewritesTheJournal) {
  const std::string journal = temp_dir() + "/compact_cli.jsonl";
  std::filesystem::remove(journal);
  const CliRun first = run({"batch", "b03s", "b04s", "--resume", journal});
  EXPECT_EQ(first.exit_code, 0) << first.err;

  const CliRun compacted = run({"batch", "b03s", "b04s", "--resume", journal,
                                "--compact-journal"});
  EXPECT_EQ(compacted.exit_code, 0) << compacted.err;
  EXPECT_NE(compacted.out.find("compacted " + journal + ": kept 2 entries"),
            std::string::npos)
      << compacted.out;

  // The compacted journal still resumes everything.
  const CliRun resumed = run({"batch", "b03s", "b04s", "--resume", journal});
  EXPECT_EQ(resumed.exit_code, 0) << resumed.err;
  EXPECT_NE(resumed.out.find("2 ok"), std::string::npos) << resumed.out;
}

TEST(Cli, ServeRejectsBadListenAndPositionals) {
  const CliRun bad_listen = run({"serve", "--listen", "nonsense"});
  EXPECT_EQ(bad_listen.exit_code, 2);
  EXPECT_NE(bad_listen.err.find("--listen expects HOST:PORT"),
            std::string::npos)
      << bad_listen.err;

  const CliRun positional = run({"serve", "b03s"});
  EXPECT_EQ(positional.exit_code, 2);
  EXPECT_NE(positional.err.find("takes no positional"), std::string::npos);
}

TEST(Cli, ClientRequiresAnEndpointAndAKnownOp) {
  const CliRun no_endpoint = run({"client", "ping"});
  EXPECT_EQ(no_endpoint.exit_code, 2);
  EXPECT_NE(no_endpoint.err.find("needs --connect"), std::string::npos)
      << no_endpoint.err;

  const CliRun bad_op = run({"client", "frobnicate", "--connect",
                             "127.0.0.1:1"});
  EXPECT_EQ(bad_op.exit_code, 2);
  EXPECT_NE(bad_op.err.find("unknown op"), std::string::npos) << bad_op.err;

  const CliRun no_op = run({"client", "--connect", "127.0.0.1:1"});
  EXPECT_EQ(no_op.exit_code, 2);
  EXPECT_NE(no_op.err.find("expected <op>"), std::string::npos) << no_op.err;
}

TEST(Cli, ClientAgainstADeadEndpointFailsWithAClearError) {
  // Port reserved and closed: connect() must fail fast with a transport
  // error, not hang.
  const CliRun r = run({"client", "ping", "--connect", "127.0.0.1:1"});
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.err.find("cannot connect"), std::string::npos) << r.err;
}

}  // namespace
}  // namespace netrev::cli
