#include "common/text.h"

#include <gtest/gtest.h>

#include "common/contracts.h"

namespace netrev {
namespace {

TEST(FormatFixed, FormatsWithRequestedDecimals) {
  EXPECT_EQ(format_fixed(1.0, 2), "1.00");
  EXPECT_EQ(format_fixed(0.675, 3), "0.675");
  EXPECT_EQ(format_fixed(-1.5, 1), "-1.5");
}

TEST(FormatFixed, ZeroDecimals) { EXPECT_EQ(format_fixed(3.7, 0), "4"); }

TEST(FormatFixed, RejectsNegativeDecimals) {
  EXPECT_THROW(format_fixed(1.0, -1), ContractViolation);
}

TEST(FormatPct, ConvertsFractionToPercent) {
  EXPECT_EQ(format_pct(0.714), "71.4");
  EXPECT_EQ(format_pct(0.0), "0.0");
  EXPECT_EQ(format_pct(1.0), "100.0");
}

TEST(Pad, LeftPadsToWidth) {
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_left("abcd", 2), "abcd");
}

TEST(Pad, RightPadsToWidth) {
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_right("abcd", 2), "abcd");
}

TEST(Split, KeepsEmptyFields) {
  const auto fields = split("a,,b,", ',');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[2], "b");
  EXPECT_EQ(fields[3], "");
}

TEST(Split, SingleFieldWithoutSeparator) {
  const auto fields = split("abc", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "abc");
}

TEST(Trim, StripsBothEnds) {
  EXPECT_EQ(trim("  a b \t\n"), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
}

TEST(StartsWith, Basics) {
  EXPECT_TRUE(starts_with("INPUT(a)", "INPUT("));
  EXPECT_FALSE(starts_with("IN", "INPUT("));
  EXPECT_TRUE(starts_with("abc", ""));
}

TEST(RenderTable, AlignsColumns) {
  const auto table = render_table({"name", "v"}, {{"x", "10"}, {"long", "2"}});
  EXPECT_NE(table.find("| name | v  |"), std::string::npos);
  EXPECT_NE(table.find("| x    | 10 |"), std::string::npos);
  EXPECT_NE(table.find("| long | 2  |"), std::string::npos);
}

TEST(RenderTable, RejectsRaggedRows) {
  EXPECT_THROW(render_table({"a", "b"}, {{"only-one"}}), ContractViolation);
}

TEST(RenderTable, EmptyBodyStillRendersHeader) {
  const auto table = render_table({"h1"}, {});
  EXPECT_NE(table.find("h1"), std::string::npos);
}

}  // namespace
}  // namespace netrev
