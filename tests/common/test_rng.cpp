#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace netrev {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowRejectsZeroBound) {
  Rng rng(3);
  EXPECT_THROW(rng.next_below(0), ContractViolation);
}

TEST(Rng, NextInCoversInclusiveRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_in(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values hit
}

TEST(Rng, NextInRejectsInvertedRange) {
  Rng rng(3);
  EXPECT_THROW(rng.next_in(3, 2), ContractViolation);
}

TEST(Rng, ChanceZeroNeverFires) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(rng.chance(0, 10));
}

TEST(Rng, ChanceFullAlwaysFires) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(rng.chance(10, 10));
}

TEST(Rng, ChanceHalfIsRoughlyBalanced) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i)
    if (rng.chance(1, 2)) ++hits;
  EXPECT_GT(hits, 4500);
  EXPECT_LT(hits, 5500);
}

TEST(Rng, BoolIsRoughlyBalanced) {
  Rng rng(17);
  int ones = 0;
  for (int i = 0; i < 10000; ++i)
    if (rng.next_bool()) ++ones;
  EXPECT_GT(ones, 4500);
  EXPECT_LT(ones, 5500);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = items;
  rng.shuffle(shuffled);
  std::multiset<int> a(items.begin(), items.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

TEST(Rng, ShuffleIsDeterministic) {
  std::vector<int> a{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> b = a;
  Rng ra(31), rb(31);
  ra.shuffle(a);
  rb.shuffle(b);
  EXPECT_EQ(a, b);
}

TEST(Rng, SplitMixExpandsDistinctSeeds) {
  std::uint64_t s1 = 0, s2 = 1;
  EXPECT_NE(splitmix64(s1), splitmix64(s2));
}

// Property: over a modest sample, each residue class of next_below(n) is
// populated (no systematic bias hole).
class RngSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSweep, AllResiduesPopulated) {
  const std::uint64_t bound = GetParam();
  Rng rng(101 + bound);
  std::vector<int> hits(bound, 0);
  for (std::uint64_t i = 0; i < bound * 200; ++i)
    ++hits[rng.next_below(bound)];
  for (std::uint64_t r = 0; r < bound; ++r)
    EXPECT_GT(hits[r], 0) << "residue " << r << " never drawn";
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngSweep,
                         ::testing::Values(2, 3, 5, 7, 16, 33));

// Rng::stream(seed, index) keys parallel work blocks: stream identity must
// depend only on (seed, index), never on construction order or thread.
TEST(RngStream, DependsOnlyOnSeedAndIndex) {
  Rng forward = Rng::stream(0x5EED, 3);
  Rng again = Rng::stream(0x5EED, 3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(forward.next_u64(), again.next_u64());
}

TEST(RngStream, DistinctIndicesAreIndependent) {
  // Adjacent indices must not produce shifted copies of one sequence.
  Rng s0 = Rng::stream(9, 0);
  Rng s1 = Rng::stream(9, 1);
  std::set<std::uint64_t> draws;
  for (int i = 0; i < 200; ++i) {
    draws.insert(s0.next_u64());
    draws.insert(s1.next_u64());
  }
  EXPECT_EQ(draws.size(), 400u);
}

TEST(RngStream, DistinctSeedsDiverge) {
  Rng a = Rng::stream(1, 0);
  Rng b = Rng::stream(2, 0);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(RngStream, StreamZeroDiffersFromPlainSeed) {
  // stream(seed, 0) is its own keyed stream, not an alias of Rng(seed).
  Rng plain(77);
  Rng stream = Rng::stream(77, 0);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (plain.next_u64() == stream.next_u64()) ++equal;
  EXPECT_LT(equal, 3);
}

}  // namespace
}  // namespace netrev
