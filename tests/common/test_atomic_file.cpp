#include "common/atomic_file.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace netrev::io {
namespace {

namespace fs = std::filesystem;

std::string read_all(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

class AtomicFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-test directory: ctest runs each case as its own parallel process,
    // so a shared directory would be wiped out from under a sibling.
    dir_ = fs::temp_directory_path() /
           (std::string("netrev_atomic_file_test_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  // Everything in the test directory except `keep` — after a successful
  // write no temp sibling may survive.
  std::size_t stray_files(const std::string& keep) const {
    std::size_t count = 0;
    for (const auto& entry : fs::directory_iterator(dir_))
      if (entry.path().string() != keep) ++count;
    return count;
  }

  fs::path dir_;
};

TEST_F(AtomicFileTest, CreatesTheTargetWithExactContents) {
  const std::string target = path("out.json");
  write_file_atomic(target, "{\"ok\":true}\n");
  EXPECT_EQ(read_all(target), "{\"ok\":true}\n");
  EXPECT_EQ(stray_files(target), 0u) << "temp file left behind";
}

TEST_F(AtomicFileTest, ReplacesExistingContentsCompletely) {
  const std::string target = path("out.txt");
  write_file_atomic(target, "first version, much longer than the second\n");
  write_file_atomic(target, "v2\n");
  EXPECT_EQ(read_all(target), "v2\n");
  EXPECT_EQ(stray_files(target), 0u);
}

TEST_F(AtomicFileTest, EmptyContentsProduceAnEmptyFile) {
  const std::string target = path("empty");
  write_file_atomic(target, "");
  EXPECT_TRUE(fs::exists(target));
  EXPECT_EQ(fs::file_size(target), 0u);
}

TEST_F(AtomicFileTest, BinaryBytesRoundTrip) {
  const std::string target = path("bytes.bin");
  std::string contents = "a\0b\nc\r\n";
  contents += '\xff';
  write_file_atomic(target, contents);
  EXPECT_EQ(read_all(target), contents);
}

TEST_F(AtomicFileTest, MissingDirectoryFailsAndLeavesNothingBehind) {
  const std::string target = path("no_such_dir/out.txt");
  EXPECT_THROW(write_file_atomic(target, "x"), std::runtime_error);
  EXPECT_FALSE(fs::exists(target));
  EXPECT_EQ(stray_files(""), 0u);
}

TEST_F(AtomicFileTest, FailedWriteKeepsThePreviousContents) {
  // The crash-safety contract: the target only ever holds the old bytes or
  // the complete new bytes.  Simulate a failure by making the target's
  // directory unwritable (temp file creation must fail), then confirm the
  // original survives untouched.
  const std::string target = path("stable.txt");
  write_file_atomic(target, "original\n");
  fs::permissions(dir_, fs::perms::owner_read | fs::perms::owner_exec);
  const bool threw = [&] {
    try {
      write_file_atomic(target, "replacement\n");
      return false;
    } catch (const std::runtime_error&) {
      return true;
    }
  }();
  fs::permissions(dir_, fs::perms::owner_all);
  if (threw) {  // root-ish environments may permit the write anyway
    EXPECT_EQ(read_all(target), "original\n");
  }
}

}  // namespace
}  // namespace netrev::io
