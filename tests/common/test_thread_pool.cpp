#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace netrev {
namespace {

TEST(ThreadPool, JobsCountsCallerAsParticipant) {
  ThreadPool serial(1);
  EXPECT_EQ(serial.jobs(), 1u);
  ThreadPool four(4);
  EXPECT_EQ(four.jobs(), 4u);
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  for (std::size_t jobs : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(jobs);
    constexpr std::size_t kCount = 1000;
    std::vector<std::atomic<int>> hits(kCount);
    pool.parallel_for(0, kCount,
                      [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < kCount; ++i)
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " jobs " << jobs;
  }
}

TEST(ThreadPool, EmptyAndSingletonRanges) {
  ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for(5, 5, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(7, 8, [&](std::size_t i) {
    EXPECT_EQ(i, 7u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, GrainStillCoversWholeRange) {
  ThreadPool pool(3);
  constexpr std::size_t kCount = 101;  // not a multiple of the grain
  std::vector<std::atomic<int>> hits(kCount);
  pool.parallel_for(0, kCount, [&](std::size_t i) { hits[i].fetch_add(1); },
                    /*grain=*/16);
  for (std::size_t i = 0; i < kCount; ++i) ASSERT_EQ(hits[i].load(), 1);
}

// The determinism contract: index-addressed slots merged in index order give
// the same result regardless of how many workers executed the body.
TEST(ThreadPool, IndexAddressedResultsAreOrderingIndependent) {
  constexpr std::size_t kCount = 512;
  const auto run = [&](std::size_t jobs) {
    ThreadPool pool(jobs);
    std::vector<std::uint64_t> slots(kCount, 0);
    pool.parallel_for(0, kCount, [&](std::size_t i) {
      slots[i] = i * 2654435761u + 17;
    });
    return slots;
  };
  const auto reference = run(1);
  EXPECT_EQ(run(2), reference);
  EXPECT_EQ(run(8), reference);
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  for (std::size_t jobs : {1u, 4u}) {
    ThreadPool pool(jobs);
    EXPECT_THROW(
        pool.parallel_for(0, 100,
                          [&](std::size_t i) {
                            if (i == 37)
                              throw std::runtime_error("boom at 37");
                          }),
        std::runtime_error);
    // The pool survives a throwing job and can run another.
    std::atomic<int> total{0};
    pool.parallel_for(0, 10, [&](std::size_t) { total.fetch_add(1); });
    EXPECT_EQ(total.load(), 10);
  }
}

TEST(ThreadPool, LowestIndexExceptionWins) {
  ThreadPool pool(4);
  std::string what;
  try {
    pool.parallel_for(0, 200, [&](std::size_t i) {
      if (i % 50 == 10) throw std::runtime_error("i=" + std::to_string(i));
    });
  } catch (const std::runtime_error& e) {
    what = e.what();
  }
  EXPECT_EQ(what, "i=10");
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  constexpr std::size_t kOuter = 16;
  constexpr std::size_t kInner = 32;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  pool.parallel_for(0, kOuter, [&](std::size_t o) {
    // Re-entering from a worker task must not enqueue (the pool has one
    // job slot); the nested loop runs inline on this participant.
    pool.parallel_for(0, kInner, [&](std::size_t i) {
      hits[o * kInner + i].fetch_add(1);
    });
  });
  for (auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ThreadPool, GlobalPoolResizes) {
  const std::size_t before = ThreadPool::global_jobs();
  ThreadPool::set_global_jobs(3);
  EXPECT_EQ(ThreadPool::global_jobs(), 3u);
  std::atomic<std::uint64_t> sum{0};
  parallel_for(0, 100, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 4950u);
  ThreadPool::set_global_jobs(before);
}

}  // namespace
}  // namespace netrev
