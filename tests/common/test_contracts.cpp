#include "common/contracts.h"

#include <gtest/gtest.h>

namespace netrev {
namespace {

TEST(Contracts, RequirePassesOnTrue) {
  EXPECT_NO_THROW(NETREV_REQUIRE(1 + 1 == 2));
}

TEST(Contracts, RequireThrowsOnFalse) {
  EXPECT_THROW(NETREV_REQUIRE(1 + 1 == 3), ContractViolation);
}

TEST(Contracts, EnsureThrowsOnFalse) {
  EXPECT_THROW(NETREV_ENSURE(false), ContractViolation);
}

TEST(Contracts, AssertThrowsOnFalse) {
  EXPECT_THROW(NETREV_ASSERT(false), ContractViolation);
}

TEST(Contracts, MessageNamesExpressionAndLocation) {
  try {
    NETREV_REQUIRE(2 < 1);
    FAIL() << "should have thrown";
  } catch (const ContractViolation& err) {
    const std::string what = err.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("test_contracts.cpp"), std::string::npos);
    EXPECT_NE(what.find("precondition"), std::string::npos);
  }
}

TEST(Contracts, ViolationIsLogicError) {
  EXPECT_THROW(NETREV_ASSERT(false), std::logic_error);
}

}  // namespace
}  // namespace netrev
