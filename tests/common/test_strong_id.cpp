#include "common/strong_id.h"

#include <gtest/gtest.h>

#include <limits>
#include <type_traits>
#include <unordered_set>

namespace netrev {
namespace {

struct TagA {};
struct TagB {};
using IdA = StrongId<TagA>;
using IdB = StrongId<TagB>;

TEST(StrongId, DefaultConstructedIsInvalid) {
  IdA id;
  EXPECT_FALSE(id.is_valid());
  EXPECT_EQ(id, IdA::invalid());
}

TEST(StrongId, ConstructedValueRoundTrips) {
  IdA id(7);
  EXPECT_TRUE(id.is_valid());
  EXPECT_EQ(id.value(), 7u);
}

TEST(StrongId, ComparesByValue) {
  EXPECT_LT(IdA(1), IdA(2));
  EXPECT_EQ(IdA(3), IdA(3));
  EXPECT_NE(IdA(3), IdA(4));
}

TEST(StrongId, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<IdA, IdB>);
  static_assert(!std::is_convertible_v<IdA, IdB>);
  SUCCEED();
}

TEST(StrongId, HashableInUnorderedContainers) {
  std::unordered_set<IdA> set;
  set.insert(IdA(1));
  set.insert(IdA(2));
  set.insert(IdA(1));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(IdA(2)));
}

TEST(StrongId, InvalidIsMaxValue) {
  EXPECT_EQ(IdA::invalid().value(),
            std::numeric_limits<std::uint32_t>::max());
}

}  // namespace
}  // namespace netrev
