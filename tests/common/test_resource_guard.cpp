#include "common/resource_guard.h"

#include <gtest/gtest.h>

namespace netrev {
namespace {

TEST(WorkBudget, UnlimitedByDefault) {
  WorkBudget budget;
  EXPECT_FALSE(budget.limited());
  for (int i = 0; i < 1000; ++i) budget.charge();
  EXPECT_EQ(budget.spent(), 1000u);
}

TEST(WorkBudget, ThrowsWhenExceeded) {
  WorkBudget budget(10);
  EXPECT_TRUE(budget.limited());
  for (int i = 0; i < 10; ++i) budget.charge();
  EXPECT_THROW(budget.charge(), ResourceLimitError);
}

TEST(WorkBudget, ChargesInBulk) {
  WorkBudget budget(100);
  budget.charge(90);
  EXPECT_EQ(budget.spent(), 90u);
  EXPECT_THROW(budget.charge(20), ResourceLimitError);
}

TEST(ResourceLimits, DefaultsAreGenerous) {
  const ResourceLimits limits;
  EXPECT_GE(limits.max_file_bytes, std::size_t{1} << 20);
  EXPECT_GE(limits.max_nets, 1'000'000u);
  EXPECT_GE(limits.max_gates, 1'000'000u);
}

TEST(ResourceLimitError, IsARuntimeError) {
  // CLI and harness catch it as a documented, graceful abort.
  const ResourceLimitError error("cone budget exhausted");
  EXPECT_NE(std::string(error.what()).find("cone"), std::string::npos);
}

}  // namespace
}  // namespace netrev
