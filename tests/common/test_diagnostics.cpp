#include "common/diagnostics.h"

#include <gtest/gtest.h>

namespace netrev::diag {
namespace {

TEST(Diagnostics, StartsEmptyAndUsable) {
  Diagnostics diags;
  EXPECT_TRUE(diags.empty());
  EXPECT_TRUE(diags.usable());
  EXPECT_EQ(diags.error_count(), 0u);
  EXPECT_EQ(diags.suppressed_count(), 0u);
}

TEST(Diagnostics, CountsPerSeverity) {
  Diagnostics diags;
  diags.note("n");
  diags.warning("w1");
  diags.warning("w2");
  diags.error("e");
  EXPECT_FALSE(diags.empty());
  EXPECT_EQ(diags.note_count(), 1u);
  EXPECT_EQ(diags.warning_count(), 2u);
  EXPECT_EQ(diags.error_count(), 1u);
  EXPECT_TRUE(diags.usable());  // errors are recoverable, fatals are not
}

TEST(Diagnostics, FatalMakesRunUnusable) {
  Diagnostics diags;
  diags.fatal("boom");
  EXPECT_FALSE(diags.usable());
}

TEST(Diagnostics, LocationRendering) {
  const SourceLocation with_file{"top.v", 12, 7};
  EXPECT_EQ(with_file.to_string(), "top.v:12:7");
  const SourceLocation no_file{"", 12, 7};
  EXPECT_EQ(no_file.to_string(), "line 12, column 7");
  EXPECT_TRUE(with_file.has_position());
  EXPECT_FALSE(SourceLocation{}.has_position());

  Diagnostics diags;
  diags.error("bad token", {"a.bench", 3, 9});
  EXPECT_NE(diags.to_string().find("a.bench:3:9"), std::string::npos);
}

TEST(Diagnostics, ErrorLimitStopsRecoveryNotCounting) {
  Diagnostics diags(/*max_errors=*/3, /*max_total=*/100);
  for (int i = 0; i < 5; ++i) diags.error("e" + std::to_string(i));
  EXPECT_TRUE(diags.at_error_limit());
  EXPECT_EQ(diags.error_count(), 5u);  // all reported errors are counted
}

TEST(Diagnostics, TotalCapSuppressesStorageButKeepsCounts) {
  Diagnostics diags(/*max_errors=*/1000, /*max_total=*/4);
  for (int i = 0; i < 10; ++i) diags.warning("w" + std::to_string(i));
  EXPECT_EQ(diags.entries().size(), 4u);
  EXPECT_EQ(diags.warning_count(), 10u);
  EXPECT_EQ(diags.suppressed_count(), 6u);
  EXPECT_NE(diags.to_string().find("suppressed"), std::string::npos);
}

TEST(Diagnostics, JsonEscapesAndCounts) {
  Diagnostics diags;
  diags.error("bad \"quote\"\n", {"f.v", 1, 2});
  diags.note("fine");
  const std::string json = diags.to_json();
  EXPECT_NE(json.find("\"bad \\\"quote\\\"\\n\""), std::string::npos);
  EXPECT_NE(json.find("\"errors\":1"), std::string::npos);
  EXPECT_NE(json.find("\"notes\":1"), std::string::npos);
  EXPECT_NE(json.find("\"file\":\"f.v\""), std::string::npos);
}

TEST(Diagnostics, SeverityNames) {
  EXPECT_EQ(severity_name(Severity::kNote), "note");
  EXPECT_EQ(severity_name(Severity::kWarning), "warning");
  EXPECT_EQ(severity_name(Severity::kError), "error");
  EXPECT_EQ(severity_name(Severity::kFatal), "fatal");
}

}  // namespace
}  // namespace netrev::diag
