// Serve-layer tests: a real Server on an ephemeral port (or Unix socket)
// exercised through the real client Connection.  The soak test is the
// acceptance gate for admission control: many more clients than workers, a
// queue small enough to force shedding, and the invariant that every request
// gets exactly one response.
#include "pipeline/serve.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli/cli.h"
#include "pipeline/artifact_cache.h"
#include "pipeline/client.h"

namespace netrev::pipeline::serve {
namespace {

using protocol::Op;
using protocol::Request;
using protocol::Response;
using protocol::Status;

// Owns a Server running on a background thread; drains it on destruction.
class RunningServer {
 public:
  explicit RunningServer(ServeOptions options) {
    options.executor.cache = &cache_;
    server_ = std::make_unique<Server>(std::move(options), &log_);
    server_->start();
    thread_ = std::thread([this] { exit_ = server_->run(); });
  }

  ~RunningServer() { drain(); }

  ExitCode drain() {
    server_->request_drain();
    if (thread_.joinable()) thread_.join();
    return exit_;
  }

  client::Endpoint endpoint() const {
    client::Endpoint endpoint;
    if (server_->port() != 0) {
      endpoint.host = "127.0.0.1";
      endpoint.port = server_->port();
    }
    return endpoint;
  }

  Server& server() { return *server_; }
  std::string log() const { return log_.str(); }

 private:
  ArtifactCache cache_;
  std::ostringstream log_;
  std::unique_ptr<Server> server_;
  std::thread thread_;
  ExitCode exit_ = ExitCode::kOk;
};

Request make(Op op, const std::string& id, const std::string& design = "") {
  Request request;
  request.id = id;
  request.op = op;
  request.design = design;
  return request;
}

TEST(Serve, PingAndStatsRoundTripOverTcp) {
  RunningServer server({});
  client::Connection connection(server.endpoint());

  const Response ping = connection.round_trip(make(Op::kPing, "p1"));
  EXPECT_EQ(ping.id, "p1");
  EXPECT_EQ(ping.status, Status::kOk);
  EXPECT_NE(ping.result.find("\"protocol\":1"), std::string::npos);

  const Response stats = connection.round_trip(make(Op::kStats, "s1"));
  EXPECT_EQ(stats.status, Status::kOk);
  EXPECT_NE(stats.result.find("\"requests\":{"), std::string::npos);
}

TEST(Serve, ServesOverUnixSocket) {
  const auto dir =
      std::filesystem::temp_directory_path() / "netrev_serve_test";
  std::filesystem::create_directories(dir);
  ServeOptions options;
  options.unix_path = (dir / "serve.sock").string();
  RunningServer server(options);

  client::Endpoint endpoint;
  endpoint.unix_path = options.unix_path;
  client::Connection connection(endpoint);
  const Response ping = connection.round_trip(make(Op::kPing, "u1"));
  EXPECT_EQ(ping.status, Status::kOk);
}

TEST(Serve, ServerAssignsIdsWhenTheClientOmitsThem) {
  RunningServer server({});
  client::Connection connection(server.endpoint());
  const Response response = connection.round_trip(make(Op::kPing, ""));
  EXPECT_FALSE(response.id.empty());
  EXPECT_EQ(response.id[0], 's');
}

TEST(Serve, MalformedLineGetsBadRequestNotDisconnect) {
  RunningServer server({});
  client::Connection connection(server.endpoint());
  const std::string line = connection.round_trip_line("this is not json");
  EXPECT_NE(line.find("\"status\":\"bad_request\""), std::string::npos);
  // The connection stays usable afterwards.
  const Response ping = connection.round_trip(make(Op::kPing, "p1"));
  EXPECT_EQ(ping.status, Status::kOk);
}

TEST(Serve, IdentifyMatchesOneShotCliByteForByte) {
  RunningServer server({});
  client::Connection connection(server.endpoint());
  const Response response =
      connection.round_trip(make(Op::kIdentify, "r1", "b03s"),
                            std::chrono::milliseconds(60000));
  ASSERT_EQ(response.status, Status::kOk) << response.error;

  std::ostringstream out, err;
  ASSERT_EQ(cli::run_cli({"identify", "b03s", "--json"}, out, err), 0);
  EXPECT_EQ(response.result + "\n", out.str());
}

TEST(Serve, ZeroQueueShedsEveryRequestAsOverloaded) {
  ServeOptions options;
  options.max_queue = 0;
  RunningServer server(options);
  client::Connection connection(server.endpoint());
  const Response response = connection.round_trip(make(Op::kPing, "p1"));
  EXPECT_EQ(response.status, Status::kOverloaded);
  EXPECT_NE(response.error.find("admission queue full"), std::string::npos);
  EXPECT_EQ(response.id, "p1");
}

TEST(Serve, IdleConnectionsAreClosedAfterTheIdleTimeout) {
  ServeOptions options;
  options.idle_timeout = std::chrono::milliseconds(200);
  RunningServer server(options);
  client::Connection connection(server.endpoint());
  // No request: the server should close the socket, surfacing as a read
  // error on our side.
  EXPECT_THROW((void)connection.read_line(std::chrono::milliseconds(5000)),
               std::runtime_error);
}

TEST(Serve, DrainUnderLoadAnswersEveryAdmittedRequestExactlyOnce) {
  ServeOptions options;
  options.max_inflight = 2;
  options.max_queue = 64;
  options.drain_timeout = std::chrono::milliseconds(60000);
  RunningServer server(options);

  // Each client pipelines all its requests (unique ids), the main thread
  // requests drain once every line is on the wire, and then each client
  // collects its responses.  Workers answer out of order, so compare as
  // id sets: every request answered exactly once, nothing lost, nothing
  // duplicated.
  constexpr int kClients = 4;
  constexpr int kPerClient = 4;
  std::atomic<int> clients_done_sending{0};
  std::atomic<int> unexpected{0};
  std::atomic<int> responses{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      try {
        client::Connection connection(server.endpoint());
        std::set<std::string> expected;
        for (int i = 0; i < kPerClient; ++i) {
          const std::string id =
              "c" + std::to_string(c) + "-" + std::to_string(i);
          expected.insert(id);
          connection.send_all(
              protocol::render_request(make(Op::kIdentify, id, "b03s")) +
              "\n");
        }
        ++clients_done_sending;
        std::set<std::string> answered;
        for (int i = 0; i < kPerClient; ++i) {
          const std::string line =
              connection.read_line(std::chrono::milliseconds(120000));
          const protocol::ParsedResponse parsed =
              protocol::parse_response(line);
          if (!parsed.response) {
            ++unexpected;
            continue;
          }
          if (!answered.insert(parsed.response->id).second) ++unexpected;
          if (parsed.response->status != Status::kOk &&
              parsed.response->status != Status::kDegraded &&
              parsed.response->status != Status::kOverloaded &&
              parsed.response->status != Status::kCancelled)
            ++unexpected;
          ++responses;
        }
        if (answered != expected) ++unexpected;
      } catch (const std::exception&) {
        unexpected += kPerClient;
        ++clients_done_sending;  // never wedge the main thread
      }
    });
  }

  while (clients_done_sending.load() < kClients)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  server.server().request_drain();
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(responses.load(), kClients * kPerClient);
  EXPECT_EQ(unexpected.load(), 0);
  EXPECT_EQ(server.drain(), ExitCode::kDrained);
}

// Acceptance soak: ≥32 clients against a 4-worker server with a queue small
// enough to force shedding.  Every request must get exactly one response
// with a sane status, and repeated designs must hit the warm cache.
TEST(Serve, SoakManyClientsAgainstSmallQueue) {
  ServeOptions options;
  options.max_inflight = 4;
  options.max_queue = 2;
  RunningServer server(options);

  constexpr int kClients = 32;
  constexpr int kPerClient = 3;
  std::atomic<int> responses{0};
  std::atomic<int> ok{0};
  std::atomic<int> shed{0};
  std::atomic<int> unexpected{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      try {
        client::Connection connection(server.endpoint());
        for (int i = 0; i < kPerClient; ++i) {
          const std::string id =
              "c" + std::to_string(c) + "-" + std::to_string(i);
          const Response response =
              connection.round_trip(make(Op::kIdentify, id, "b03s"),
                                    std::chrono::milliseconds(120000));
          if (response.id != id) ++unexpected;
          switch (response.status) {
            case Status::kOk:
            case Status::kDegraded:
              ++ok;
              break;
            case Status::kOverloaded:
              ++shed;
              break;
            case Status::kDeadline:
              break;  // allowed under load, not expected without a ceiling
            default:
              ++unexpected;
          }
          ++responses;
        }
      } catch (const std::exception&) {
        unexpected += kPerClient;
      }
    });
  }
  for (std::thread& t : clients) t.join();

  // Exactly one response per request, all with sane statuses.
  EXPECT_EQ(responses.load(), kClients * kPerClient);
  EXPECT_EQ(unexpected.load(), 0);
  EXPECT_GT(ok.load(), 0);
  // 96 near-simultaneous arrivals against 4 workers + 2 queue slots must
  // shed; if this ever flakes the queue is not being bounded.
  EXPECT_GT(shed.load(), 0);

  // The repeated design is served from the shared cache across requests.
  client::Connection connection(server.endpoint());
  const Response stats = connection.round_trip(make(Op::kStats, "st"));
  ASSERT_EQ(stats.status, Status::kOk);
  const auto hits_at = stats.result.find("\"hits\":");
  ASSERT_NE(hits_at, std::string::npos);
  EXPECT_EQ(stats.result.find("\"hits\":0,"), std::string::npos)
      << stats.result;
}

TEST(Serve, StatsCountShedsAndBadRequests) {
  ServeOptions options;
  options.max_queue = 0;  // every admitted op sheds
  RunningServer server(options);
  client::Connection connection(server.endpoint());
  (void)connection.round_trip(make(Op::kPing, "p1"));
  (void)connection.round_trip_line("{broken");
  // A wire-level stats request would itself be shed (max_queue=0), so read
  // the counters off the executor directly.
  const std::string stats = server.server().executor().stats_json();
  EXPECT_NE(stats.find("\"overloaded\":1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"bad_request\":1"), std::string::npos) << stats;
}

TEST(Serve, DrainOnIdleServerExitsCleanly) {
  RunningServer server({});
  EXPECT_EQ(server.drain(), ExitCode::kDrained);
  EXPECT_NE(server.log().find("drained cleanly"), std::string::npos);
}

}  // namespace
}  // namespace netrev::pipeline::serve
