// Crash-safe resume: a journaled batch interrupted at any point must be
// completable by a later `--resume` run whose final output is byte-identical
// to the uninterrupted run — no duplicated work, no lost entries, and stale
// journal lines (edited inputs, different options) never match.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "pipeline/batch.h"
#include "pipeline/journal.h"

namespace netrev {
namespace {

namespace fs = std::filesystem;

const std::vector<std::string> kFamilies = {"b03s", "b04s", "b08s"};

class BatchResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-test directory: ctest runs each case as its own parallel process,
    // so a shared directory would be wiped out from under a sibling.
    dir_ = fs::temp_directory_path() /
           (std::string("netrev_batch_resume_test_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    journal_ = (dir_ / "journal.jsonl").string();
  }
  void TearDown() override { fs::remove_all(dir_); }

  pipeline::BatchOptions resume_options() const {
    pipeline::BatchOptions options;
    options.resume_path = journal_;
    return options;
  }

  std::string write_bench(const std::string& name, const std::string& text) {
    const std::string path = (dir_ / name).string();
    std::ofstream(path) << text;
    return path;
  }

  fs::path dir_;
  std::string journal_;
};

TEST_F(BatchResumeTest, ResumedRunMatchesUninterruptedByteForByte) {
  // "Interrupted" run that only got through the first entry.
  const pipeline::BatchResult partial =
      pipeline::run_batch({kFamilies[0]}, resume_options());
  EXPECT_TRUE(partial.all_ok());
  EXPECT_EQ(partial.resumed, 0u);
  ASSERT_EQ(pipeline::read_journal(journal_).size(), 1u);

  const pipeline::BatchResult resumed =
      pipeline::run_batch(kFamilies, resume_options());
  EXPECT_EQ(resumed.resumed, 1u);
  EXPECT_TRUE(resumed.all_ok()) << resumed.render_text();

  const pipeline::BatchResult uninterrupted = pipeline::run_batch(kFamilies);
  EXPECT_EQ(resumed.to_json(), uninterrupted.to_json());

  // No lost and no duplicated entries: one journal line per spec.
  EXPECT_EQ(pipeline::read_journal(journal_).size(), kFamilies.size());
}

TEST_F(BatchResumeTest, CancelledEntriesAreNeverJournaled) {
  pipeline::BatchOptions options = resume_options();
  options.config.exec.cancellable = true;
  options.config.exec.cancel.request_cancel();  // SIGINT before any work
  const pipeline::BatchResult result = pipeline::run_batch(kFamilies, options);
  EXPECT_TRUE(result.interrupted());
  EXPECT_EQ(result.cancelled, kFamilies.size());
  EXPECT_FALSE(result.all_ok());
  // Nothing finished, so nothing may be recorded as finished.
  EXPECT_TRUE(pipeline::read_journal(journal_).empty());
}

TEST_F(BatchResumeTest, InterruptedMidBatchThenResumedLosesNothing) {
  // Entry 1 finishes; then the run is interrupted (cancel token = SIGINT).
  ASSERT_TRUE(pipeline::run_batch({kFamilies[0]}, resume_options()).all_ok());

  pipeline::BatchOptions cancelled = resume_options();
  cancelled.config.exec.cancellable = true;
  cancelled.config.exec.cancel.request_cancel();
  const pipeline::BatchResult interrupted =
      pipeline::run_batch(kFamilies, cancelled);
  // The journaled entry is restored even in the interrupted run; the rest
  // are cancelled, not failed and not journaled.
  EXPECT_EQ(interrupted.resumed, 1u);
  EXPECT_EQ(interrupted.ok, 1u);
  EXPECT_EQ(interrupted.cancelled, kFamilies.size() - 1);
  EXPECT_TRUE(interrupted.interrupted());
  EXPECT_EQ(pipeline::read_journal(journal_).size(), 1u);

  // The recovery run completes the remainder and matches a clean run.
  const pipeline::BatchResult recovered =
      pipeline::run_batch(kFamilies, resume_options());
  EXPECT_EQ(recovered.resumed, 1u);
  EXPECT_TRUE(recovered.all_ok());
  EXPECT_EQ(recovered.to_json(), pipeline::run_batch(kFamilies).to_json());
  EXPECT_EQ(pipeline::read_journal(journal_).size(), kFamilies.size());
}

TEST_F(BatchResumeTest, FailedEntriesAreJournaledAndRestored) {
  const std::string missing = (dir_ / "nope.bench").string();
  pipeline::BatchOptions options = resume_options();
  options.keep_going = true;
  const pipeline::BatchResult first =
      pipeline::run_batch({missing, kFamilies[0]}, options);
  EXPECT_EQ(first.failed, 1u);
  EXPECT_EQ(first.ok, 1u);
  EXPECT_EQ(pipeline::read_journal(journal_).size(), 2u);

  const pipeline::BatchResult again =
      pipeline::run_batch({missing, kFamilies[0]}, options);
  EXPECT_EQ(again.resumed, 2u) << "recorded failure was recomputed";
  EXPECT_EQ(again.to_json(),
            pipeline::run_batch({missing, kFamilies[0]},
                                [&] {
                                  pipeline::BatchOptions fresh;
                                  fresh.keep_going = true;
                                  return fresh;
                                }())
                .to_json());
}

TEST_F(BatchResumeTest, DifferentOptionsNeverMatchTheJournal) {
  pipeline::BatchOptions deep = resume_options();
  deep.config.wordrec.cone_depth = 2;
  ASSERT_TRUE(pipeline::run_batch({kFamilies[0]}, deep).all_ok());

  // Same journal, default options: the recorded outcome must not be reused.
  const pipeline::BatchResult other =
      pipeline::run_batch({kFamilies[0]}, resume_options());
  EXPECT_EQ(other.resumed, 0u);
  EXPECT_TRUE(other.all_ok());
}

TEST_F(BatchResumeTest, EditedInputFileNeverMatchesTheJournal) {
  const std::string path = write_bench(
      "tiny.bench", "INPUT(a)\nINPUT(b)\nOUTPUT(c)\nc = AND(a, b)\n");
  ASSERT_TRUE(pipeline::run_batch({path}, resume_options()).all_ok());
  EXPECT_EQ(pipeline::run_batch({path}, resume_options()).resumed, 1u);

  // Edit the file: its content hash — and therefore its key — changes.
  std::ofstream(path) << "INPUT(a)\nINPUT(b)\nOUTPUT(c)\nc = OR(a, b)\n";
  const pipeline::BatchResult edited =
      pipeline::run_batch({path}, resume_options());
  EXPECT_EQ(edited.resumed, 0u) << "stale journal entry matched edited file";
  EXPECT_TRUE(edited.all_ok());
}

TEST_F(BatchResumeTest, ResumedRunIsByteStableAtAnyJobCount) {
  ASSERT_TRUE(
      pipeline::run_batch({kFamilies[0], kFamilies[1]}, resume_options())
          .all_ok());
  ThreadPool::set_global_jobs(1);
  const std::string serial =
      pipeline::run_batch(kFamilies, resume_options()).to_json();
  ThreadPool::set_global_jobs(4);
  const std::string parallel =
      pipeline::run_batch(kFamilies, resume_options()).to_json();
  ThreadPool::set_global_jobs(0);
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace netrev
