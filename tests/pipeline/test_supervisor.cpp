// WorkerPool tests against mock workers (/bin/cat, /bin/sh scripts): every
// crash classification, restart-with-backoff, the respawn budget, the
// watchdog, and poison().  Real netrev workers (this test binary re-execed
// in worker mode) are covered by test_isolation.cpp.
#include "pipeline/supervisor.h"

#include <csignal>
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>

namespace netrev::pipeline::supervisor {
namespace {

namespace fs = std::filesystem;

PoolOptions shell(const std::string& script, std::size_t workers = 1) {
  PoolOptions options;
  options.exe = "/bin/sh";
  options.args = {"-c", script};
  options.workers = workers;
  options.restart_backoff = std::chrono::milliseconds(1);
  return options;
}

TEST(Supervisor, EchoWorkerRoundTrips) {
  PoolOptions options;
  options.exe = "/bin/cat";
  options.workers = 1;
  WorkerPool pool(options);

  const auto first = pool.run("{\"op\":\"ping\"}");
  EXPECT_FALSE(first.crashed);
  EXPECT_EQ(first.response, "{\"op\":\"ping\"}");

  const auto second = pool.run("second line");
  EXPECT_FALSE(second.crashed);
  EXPECT_EQ(second.response, "second line");

  const PoolStats stats = pool.stats();
  EXPECT_EQ(stats.spawned, 1u);  // one worker served both round trips
  EXPECT_EQ(stats.alive, 1u);
  EXPECT_EQ(stats.crashes, 0u);
  EXPECT_EQ(stats.restarts, 0u);
}

TEST(Supervisor, ConcurrentRoundTripsFanOutAcrossWorkers) {
  // Each round trip holds its worker for ~200ms, so two concurrent callers
  // must spawn two workers to both finish.
  WorkerPool pool(shell("while read line; do sleep 0.2; echo \"$line\"; done",
                        /*workers=*/2));
  std::thread other([&] {
    const auto outcome = pool.run("a");
    EXPECT_FALSE(outcome.crashed);
    EXPECT_EQ(outcome.response, "a");
  });
  const auto outcome = pool.run("b");
  other.join();
  EXPECT_FALSE(outcome.crashed);
  EXPECT_EQ(outcome.response, "b");
  EXPECT_EQ(pool.stats().spawned, 2u);
}

TEST(Supervisor, ExitWithoutReplyIsClassifiedAsExitCrash) {
  WorkerPool pool(shell("read line; exit 7"));
  const auto outcome = pool.run("x");
  ASSERT_TRUE(outcome.crashed);
  EXPECT_EQ(outcome.crash.kind, CrashKind::kExit);
  EXPECT_EQ(outcome.crash.exit_status, 7);
  EXPECT_EQ(outcome.crash.describe(), "exit 7 without reply");
}

TEST(Supervisor, SignalDeathIsClassifiedAsSignalCrash) {
  WorkerPool pool(shell("read line; kill -9 $$"));
  const auto outcome = pool.run("x");
  ASSERT_TRUE(outcome.crashed);
  EXPECT_EQ(outcome.crash.kind, CrashKind::kSignal);
  EXPECT_EQ(outcome.crash.signal, SIGKILL);
  EXPECT_EQ(outcome.crash.describe(), "signal 9 (SIGKILL)");
}

TEST(Supervisor, SilentExitZeroIsStillACrash) {
  // A worker that exits cleanly without answering broke the protocol; the
  // caller must see a crash outcome, never a fabricated response.
  WorkerPool pool(shell("exit 0"));
  const auto outcome = pool.run("x");
  ASSERT_TRUE(outcome.crashed);
  EXPECT_EQ(outcome.crash.kind, CrashKind::kExit);
  EXPECT_EQ(outcome.crash.exit_status, 0);
}

TEST(Supervisor, WatchdogKillsHungWorker) {
  WorkerPool pool(shell("read line; exec sleep 30"));
  const auto start = std::chrono::steady_clock::now();
  const auto outcome = pool.run("x", std::chrono::milliseconds(200));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_TRUE(outcome.crashed);
  EXPECT_EQ(outcome.crash.kind, CrashKind::kTimeout);
  EXPECT_NE(outcome.crash.describe().find("watchdog timeout"),
            std::string::npos);
  EXPECT_LT(elapsed, std::chrono::seconds(10));  // nowhere near the sleep
  EXPECT_EQ(pool.stats().alive, 0u);             // the worker was SIGKILLed
}

TEST(Supervisor, CrashedWorkerIsReplacedOnNextDispatch) {
  // The script crashes on its first life (no flag file yet) and behaves on
  // the second, so one restart must fully recover the pool.
  const fs::path flag =
      fs::temp_directory_path() /
      (std::string("netrev_supervisor_flag_") +
       ::testing::UnitTest::GetInstance()->current_test_info()->name());
  fs::remove(flag);
  WorkerPool pool(shell("if [ -f '" + flag.string() +
                        "' ]; then read line; echo \"$line\"; read rest; " +
                        "else : > '" + flag.string() +
                        "'; read line; exit 1; fi"));

  const auto crash = pool.run("first");
  ASSERT_TRUE(crash.crashed);
  const auto recovered = pool.run("second");
  EXPECT_FALSE(recovered.crashed);
  EXPECT_EQ(recovered.response, "second");

  const PoolStats stats = pool.stats();
  EXPECT_EQ(stats.spawned, 2u);
  EXPECT_EQ(stats.restarts, 1u);
  EXPECT_EQ(stats.crashes, 1u);
  fs::remove(flag);
}

TEST(Supervisor, ExhaustedRespawnBudgetYieldsSpawnOutcomes) {
  PoolOptions options = shell("read line; exit 1");
  options.max_restarts = 0;  // initial spawns are free; respawns are not
  WorkerPool pool(options);

  const auto first = pool.run("x");
  ASSERT_TRUE(first.crashed);
  EXPECT_EQ(first.crash.kind, CrashKind::kExit);

  const auto second = pool.run("x");
  ASSERT_TRUE(second.crashed);
  EXPECT_EQ(second.crash.kind, CrashKind::kSpawn);
  EXPECT_EQ(second.crash.describe().rfind("spawn failed", 0), 0u);
}

TEST(Supervisor, PoisonKillsIdleWorkersAndTheNextDispatchRespawns) {
  PoolOptions options;
  options.exe = "/bin/cat";
  options.workers = 1;
  options.restart_backoff = std::chrono::milliseconds(1);
  WorkerPool pool(options);

  EXPECT_FALSE(pool.run("warm").crashed);
  EXPECT_EQ(pool.stats().alive, 1u);
  pool.poison();
  EXPECT_EQ(pool.stats().alive, 0u);

  const auto outcome = pool.run("again");
  EXPECT_FALSE(outcome.crashed);
  EXPECT_EQ(outcome.response, "again");
  EXPECT_EQ(pool.stats().spawned, 2u);
}

TEST(Supervisor, PoisonInterruptsAnInFlightRoundTrip) {
  // The serve drain depends on this: poison() must make a blocked round trip
  // return (as a crash outcome) instead of waiting out the worker.
  WorkerPool pool(shell("read line; exec sleep 30"));
  WorkerPool::Outcome outcome;
  std::thread caller([&] { outcome = pool.run("x"); });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  pool.poison();
  caller.join();
  ASSERT_TRUE(outcome.crashed);
  EXPECT_EQ(outcome.crash.kind, CrashKind::kSignal);
  EXPECT_EQ(outcome.crash.signal, SIGKILL);
}

TEST(Supervisor, DescribeProducesStableJournalStrings) {
  CrashInfo info;
  info.kind = CrashKind::kSignal;
  info.signal = SIGABRT;
  EXPECT_EQ(info.describe(), "signal 6 (SIGABRT)");
  info.signal = 64;  // unnamed realtime signal: number only
  EXPECT_EQ(info.describe(), "signal 64");

  info = CrashInfo{};
  info.kind = CrashKind::kExit;
  info.exit_status = 3;
  EXPECT_EQ(info.describe(), "exit 3 without reply");

  info = CrashInfo{};
  info.kind = CrashKind::kTimeout;
  info.detail = "killed after 500ms";
  EXPECT_EQ(info.describe(), "watchdog timeout (killed after 500ms)");

  info = CrashInfo{};
  info.kind = CrashKind::kSpawn;
  info.detail = "respawn budget exhausted";
  EXPECT_EQ(info.describe(), "spawn failed: respawn budget exhausted");
}

}  // namespace
}  // namespace netrev::pipeline::supervisor
