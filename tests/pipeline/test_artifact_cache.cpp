#include "pipeline/artifact_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace netrev::pipeline {
namespace {

std::shared_ptr<const int> make_int(int value) {
  return std::make_shared<int>(value);
}

TEST(ArtifactCache, MissThenHitReturnsTheStoredArtifact) {
  ArtifactCache cache;
  const ArtifactKey key{"stage", 1, 2};
  int computes = 0;
  const auto first = cache.get_or_compute<int>(key, [&] {
    ++computes;
    return make_int(7);
  });
  const auto second = cache.get_or_compute<int>(key, [&] {
    ++computes;
    return make_int(8);
  });
  EXPECT_EQ(*first, 7);
  EXPECT_EQ(second.get(), first.get());
  EXPECT_EQ(computes, 1);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(ArtifactCache, EveryKeyComponentSeparatesSlots) {
  ArtifactCache cache;
  const auto a = cache.get_or_compute<int>({"s", 1, 0}, [] { return make_int(1); });
  const auto b = cache.get_or_compute<int>({"s", 2, 0}, [] { return make_int(2); });
  const auto c = cache.get_or_compute<int>({"t", 1, 0}, [] { return make_int(3); });
  const auto d = cache.get_or_compute<int>({"s", 1, 9}, [] { return make_int(4); });
  EXPECT_EQ(*a, 1);
  EXPECT_EQ(*b, 2);
  EXPECT_EQ(*c, 3);
  EXPECT_EQ(*d, 4);
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(ArtifactCache, TypeMismatchOnOneKeyThrows) {
  ArtifactCache cache;
  const ArtifactKey key{"s", 1, 0};
  (void)cache.get_or_compute<int>(key, [] { return make_int(1); });
  EXPECT_THROW(
      (void)cache.get_or_compute<std::string>(
          key, [] { return std::make_shared<const std::string>("x"); }),
      std::logic_error);
}

TEST(ArtifactCache, ThrowingComputeStoresNothing) {
  ArtifactCache cache;
  const ArtifactKey key{"s", 1, 0};
  EXPECT_THROW((void)cache.get_or_compute<int>(
                   key,
                   []() -> std::shared_ptr<const int> {
                     throw std::runtime_error("boom");
                   }),
               std::runtime_error);
  EXPECT_EQ(cache.size(), 0u);
  const auto value = cache.get_or_compute<int>(key, [] { return make_int(5); });
  EXPECT_EQ(*value, 5);
}

TEST(ArtifactCache, FifoEvictionBoundsTheEntryCount) {
  ArtifactCache cache(4);
  for (std::uint64_t i = 0; i < 8; ++i)
    (void)cache.get_or_compute<int>(
        {"s", i, 0}, [i] { return make_int(static_cast<int>(i)); });
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.evictions(), 4u);

  // The newest entry survived; the oldest was evicted and recomputes.
  int computes = 0;
  (void)cache.get_or_compute<int>({"s", 7, 0}, [&] {
    ++computes;
    return make_int(0);
  });
  EXPECT_EQ(computes, 0);
  (void)cache.get_or_compute<int>({"s", 0, 0}, [&] {
    ++computes;
    return make_int(0);
  });
  EXPECT_EQ(computes, 1);
}

TEST(ArtifactCache, ClearDropsEntriesButKeepsCounters) {
  ArtifactCache cache;
  (void)cache.get_or_compute<int>({"s", 1, 0}, [] { return make_int(1); });
  (void)cache.get_or_compute<int>({"s", 1, 0}, [] { return make_int(1); });
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(ArtifactCache, ConcurrentColdLookupsConvergeOnOneArtifact) {
  ArtifactCache cache;
  const ArtifactKey key{"s", 42, 0};
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const int>> seen(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&cache, &seen, key, t] {
      seen[t] = cache.get_or_compute<int>(key, [t] { return make_int(t); });
    });
  for (std::thread& thread : threads) thread.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t].get(), seen[0].get());
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.hits() + cache.misses(), static_cast<std::uint64_t>(kThreads));
}

TEST(ArtifactCache, SetMaxEntriesEvictsDownToTheNewBound) {
  ArtifactCache cache(8);
  for (std::uint64_t i = 0; i < 8; ++i)
    (void)cache.get_or_compute<int>(
        {"s", i, 0}, [i] { return make_int(static_cast<int>(i)); });
  cache.set_max_entries(3);
  EXPECT_EQ(cache.max_entries(), 3u);
  EXPECT_EQ(cache.size(), 3u);
  // FIFO: the newest entries survive the shrink.
  int computes = 0;
  (void)cache.get_or_compute<int>({"s", 7, 0}, [&] {
    ++computes;
    return make_int(0);
  });
  EXPECT_EQ(computes, 0);
}

TEST(ArtifactCache, ZeroEntriesDisablesCachingButComputesStillRun) {
  ArtifactCache cache(0);
  EXPECT_EQ(cache.max_entries(), 0u);
  int computes = 0;
  const auto compute = [&] {
    ++computes;
    return make_int(computes);
  };
  const auto first = cache.get_or_compute<int>({"s", 1, 0}, compute);
  const auto second = cache.get_or_compute<int>({"s", 1, 0}, compute);
  // Every lookup misses and recomputes; nothing is retained.
  EXPECT_EQ(*first, 1);
  EXPECT_EQ(*second, 2);
  EXPECT_EQ(computes, 2);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(ArtifactCache, SetMaxEntriesZeroClearsExistingEntries) {
  ArtifactCache cache(8);
  (void)cache.get_or_compute<int>({"s", 1, 0}, [] { return make_int(1); });
  cache.set_max_entries(0);
  EXPECT_EQ(cache.size(), 0u);
  int computes = 0;
  (void)cache.get_or_compute<int>({"s", 1, 0}, [&] {
    ++computes;
    return make_int(1);
  });
  EXPECT_EQ(computes, 1);
}

TEST(ArtifactCache, GlobalCacheIsOneSharedInstance) {
  EXPECT_EQ(&ArtifactCache::global(), &ArtifactCache::global());
  EXPECT_EQ(ArtifactCache::global().max_entries(),
            ArtifactCache::kDefaultMaxEntries);
}

}  // namespace
}  // namespace netrev::pipeline
