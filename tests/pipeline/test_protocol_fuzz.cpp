// Protocol fuzz suite: malformed, hostile, and oversized frames thrown at
// the Executor (parse layer) and at a live Server (socket layer).  The
// invariants under fire: the daemon never dies, and every delivered frame
// gets exactly one structured reply — bad_request for garbage, never a
// hang, never a disconnect without a reply.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "pipeline/artifact_cache.h"
#include "pipeline/client.h"
#include "pipeline/protocol.h"
#include "pipeline/serve.h"

namespace netrev::pipeline {
namespace {

// Frames that must parse to "no request" with a one-line error.
std::vector<std::string> malformed_frames() {
  return {
      "",
      "   ",
      "not json at all",
      "{",
      "}",
      "[]",
      "null",
      "42",
      "\"just a string\"",
      "{}",                                // no op
      "{\"op\":42}",                       // op is not a string
      "{\"op\":\"frobnicate\"}",           // unknown op
      "{\"op\":\"identify\"",              // truncated object
      "{\"op\":\"identify\",\"design\":",  // truncated value
      "{\"op\":\"identify\",\"design\":123}",
      std::string("{\"op\":\"ping\"\x00\"x\"}", 18),  // embedded NUL
      "{\"op\": \"ping\", \"op\": ",                  // duplicate, truncated
      "\xff\xfe\xfd binary garbage \x01\x02",
      "{\"op\":\"identify\",\"options\":\"not an object\"}",
      "{\"op\":\"identify\",\"options\":{\"depth\":\"deep\"}}",
  };
}

TEST(ProtocolFuzz, ParseRequestRejectsEveryMalformedFrameWithAnError) {
  for (const std::string& frame : malformed_frames()) {
    const protocol::ParsedRequest parsed = protocol::parse_request(frame);
    EXPECT_FALSE(parsed.request.has_value()) << frame;
    EXPECT_FALSE(parsed.error.empty()) << frame;
  }
}

TEST(ProtocolFuzz, ParseRequestSurvivesDeeplyNestedAndHugeFrames) {
  // Nesting depth is recursion depth: a hostile frame of brackets must be
  // refused by the depth bound, not ride the stack into the ground.
  std::string deep = "{\"op\":";
  deep.append(100000, '[');
  const protocol::ParsedRequest rejected = protocol::parse_request(deep);
  EXPECT_FALSE(rejected.request.has_value());
  EXPECT_NE(rejected.error.find("nesting too deep"), std::string::npos);

  // A huge (but syntactically dull) line parses or rejects — no crash.
  std::string huge = "{\"op\":\"identify\",\"design\":\"";
  huge.append(1 << 20, 'a');
  huge += "\"}";
  const protocol::ParsedRequest parsed = protocol::parse_request(huge);
  if (parsed.request) {
    EXPECT_EQ(parsed.request->design.size(), 1u << 20);
  }
}

// Owns a Server on an ephemeral TCP port; drains on destruction.
class RunningServer {
 public:
  explicit RunningServer(serve::ServeOptions options = {}) {
    options.executor.cache = &cache_;
    server_ = std::make_unique<serve::Server>(std::move(options), &log_);
    server_->start();
    thread_ = std::thread([this] { (void)server_->run(); });
  }
  ~RunningServer() {
    server_->request_drain();
    if (thread_.joinable()) thread_.join();
  }

  client::Endpoint endpoint() const {
    client::Endpoint endpoint;
    endpoint.host = "127.0.0.1";
    endpoint.port = server_->port();
    return endpoint;
  }

 private:
  ArtifactCache cache_;
  std::ostringstream log_;
  std::unique_ptr<serve::Server> server_;
  std::thread thread_;
};

TEST(ProtocolFuzz, EveryMalformedFrameGetsExactlyOneBadRequestReply) {
  RunningServer server;
  client::Connection connection(server.endpoint());
  for (const std::string& frame : malformed_frames()) {
    // Newlines are the framing (a frame containing one would be two
    // frames), and a blank line is a keepalive the server skips silently.
    if (frame.empty() || frame.find('\n') != std::string::npos) continue;
    const std::string reply = connection.round_trip_line(frame);
    EXPECT_NE(reply.find("\"status\":\"bad_request\""), std::string::npos)
        << frame;
  }
  // The connection — and the daemon — are still fully serviceable.
  const std::string pong = connection.round_trip_line("{\"op\":\"ping\"}");
  EXPECT_NE(pong.find("\"status\":\"ok\""), std::string::npos);
}

TEST(ProtocolFuzz, PipelinedGarbageGetsOneReplyPerLine) {
  RunningServer server;
  client::Connection connection(server.endpoint());
  const std::vector<std::string> frames = {"{broken", "not json", "[]",
                                           "{\"op\":\"ping\",\"id\":\"p\"}"};
  std::string burst;
  for (const std::string& frame : frames) burst += frame + "\n";
  connection.send_all(burst);

  std::size_t bad = 0, ok = 0;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    const std::string reply =
        connection.read_line(std::chrono::milliseconds(60000));
    if (reply.find("\"status\":\"bad_request\"") != std::string::npos) ++bad;
    if (reply.find("\"status\":\"ok\"") != std::string::npos) ++ok;
  }
  EXPECT_EQ(bad, 3u);
  EXPECT_EQ(ok, 1u);
}

TEST(ProtocolFuzz, OversizedFrameIsRefusedWithBadRequestThenDisconnect) {
  serve::ServeOptions options;
  options.max_request_bytes = 1024;
  RunningServer server(options);
  client::Connection connection(server.endpoint());

  // An endless line (no newline) past the bound: one structured refusal,
  // then the server closes the connection.
  connection.send_all(std::string(4096, 'x'));
  const std::string reply =
      connection.read_line(std::chrono::milliseconds(60000));
  EXPECT_NE(reply.find("\"status\":\"bad_request\""), std::string::npos);
  EXPECT_NE(reply.find("max-request-bytes"), std::string::npos);
  EXPECT_THROW((void)connection.read_line(std::chrono::milliseconds(60000)),
               std::runtime_error);

  // The daemon itself shrugged it off: a fresh connection works.
  client::Connection fresh(server.endpoint());
  const std::string pong = fresh.round_trip_line("{\"op\":\"ping\"}");
  EXPECT_NE(pong.find("\"status\":\"ok\""), std::string::npos);
}

TEST(ProtocolFuzz, FrameExactlyAtTheBoundIsServed) {
  serve::ServeOptions options;
  options.max_request_bytes = 256;
  RunningServer server(options);
  client::Connection connection(server.endpoint());

  // Pad a valid ping with ignored fields up to exactly the bound (the
  // newline itself is the frame terminator, not part of the frame).
  std::string frame = "{\"op\":\"ping\",\"id\":\"";
  frame.append(256 - frame.size() - 2, 'p');
  frame += "\"}";
  ASSERT_EQ(frame.size(), 256u);
  const std::string reply = connection.round_trip_line(frame);
  EXPECT_NE(reply.find("\"status\":\"ok\""), std::string::npos);
}

}  // namespace
}  // namespace netrev::pipeline
