#include "pipeline/protocol.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>

#include "exec/cancel.h"
#include "pipeline/artifact_cache.h"
#include "pipeline/session.h"

namespace netrev::pipeline::protocol {
namespace {

using std::chrono::milliseconds;

ExecutorConfig with_cache(ArtifactCache& cache) {
  ExecutorConfig config;
  config.cache = &cache;
  return config;
}

// --- parsing ----------------------------------------------------------------

TEST(Protocol, ParsesMinimalRequest) {
  const ParsedRequest parsed = parse_request("{\"op\":\"ping\"}");
  ASSERT_TRUE(parsed.request.has_value());
  EXPECT_EQ(parsed.request->op, Op::kPing);
  EXPECT_TRUE(parsed.request->id.empty());
}

TEST(Protocol, ParsesFullIdentifyRequest) {
  const ParsedRequest parsed = parse_request(
      "{\"id\":\"r1\",\"op\":\"identify\",\"design\":\"b03s\","
      "\"options\":{\"base\":false,\"depth\":4,\"max_assign\":2,"
      "\"cross_group\":true,\"permissive\":false,\"timeout_ms\":1000,"
      "\"degrade\":\"groups\",\"max_errors\":8}}");
  ASSERT_TRUE(parsed.request.has_value());
  const Request& request = *parsed.request;
  EXPECT_EQ(request.id, "r1");
  EXPECT_EQ(request.op, Op::kIdentify);
  EXPECT_EQ(request.design, "b03s");
  ASSERT_TRUE(request.options.base.has_value());
  EXPECT_FALSE(*request.options.base);
  EXPECT_EQ(request.options.depth, 4u);
  EXPECT_EQ(request.options.max_assign, 2u);
  EXPECT_EQ(request.options.cross_group, true);
  EXPECT_EQ(request.options.timeout_ms, 1000u);
  EXPECT_EQ(request.options.max_errors, 8u);
  ASSERT_TRUE(request.options.degrade.has_value());
  EXPECT_TRUE(request.options.degrade->enabled);
}

TEST(Protocol, ParsesBatchDesignList) {
  const ParsedRequest parsed = parse_request(
      "{\"op\":\"batch\",\"designs\":[\"b01s\",\"b02s\"]}");
  ASSERT_TRUE(parsed.request.has_value());
  ASSERT_EQ(parsed.request->designs.size(), 2u);
  EXPECT_EQ(parsed.request->designs[0], "b01s");
  EXPECT_EQ(parsed.request->designs[1], "b02s");
}

TEST(Protocol, RejectsMissingOp) {
  const ParsedRequest parsed = parse_request("{\"design\":\"b03s\"}");
  EXPECT_FALSE(parsed.request.has_value());
  EXPECT_NE(parsed.error.find("missing \"op\""), std::string::npos);
}

TEST(Protocol, RejectsUnknownOp) {
  const ParsedRequest parsed = parse_request("{\"op\":\"frobnicate\"}");
  EXPECT_FALSE(parsed.request.has_value());
  EXPECT_NE(parsed.error.find("unknown op"), std::string::npos);
  // The error enumerates every op the server speaks.
  for (const char* op :
       {"ping", "stats", "load", "lint", "identify", "evaluate", "batch",
        "lift"})
    EXPECT_NE(parsed.error.find(op), std::string::npos) << op;
}

TEST(Protocol, RejectsMistypedFields) {
  EXPECT_FALSE(parse_request("{\"op\":1}").request.has_value());
  EXPECT_FALSE(parse_request("{\"op\":\"ping\",\"id\":7}").request.has_value());
  EXPECT_FALSE(
      parse_request("{\"op\":\"batch\",\"designs\":\"b01s\"}")
          .request.has_value());
  EXPECT_FALSE(
      parse_request("{\"op\":\"batch\",\"designs\":[1,2]}")
          .request.has_value());
  EXPECT_FALSE(
      parse_request("{\"op\":\"identify\",\"options\":[]}")
          .request.has_value());
}

TEST(Protocol, RejectsUnknownOptionKeysInsteadOfIgnoringTypos) {
  const ParsedRequest parsed = parse_request(
      "{\"op\":\"identify\",\"design\":\"b03s\","
      "\"options\":{\"deptth\":4}}");
  EXPECT_FALSE(parsed.request.has_value());
  EXPECT_NE(parsed.error.find("unknown option \"deptth\""), std::string::npos);
}

TEST(Protocol, RejectsMistypedOptionValues) {
  EXPECT_FALSE(parse_request("{\"op\":\"identify\",\"options\":"
                             "{\"depth\":\"four\"}}")
                   .request.has_value());
  EXPECT_FALSE(parse_request("{\"op\":\"identify\",\"options\":"
                             "{\"depth\":-4}}")
                   .request.has_value());
  EXPECT_FALSE(parse_request("{\"op\":\"identify\",\"options\":"
                             "{\"base\":\"yes\"}}")
                   .request.has_value());
  EXPECT_FALSE(parse_request("{\"op\":\"identify\",\"options\":"
                             "{\"degrade\":\"sideways\"}}")
                   .request.has_value());
}

TEST(Protocol, RejectsMalformedJson) {
  EXPECT_FALSE(parse_request("").request.has_value());
  EXPECT_FALSE(parse_request("not json").request.has_value());
  EXPECT_FALSE(parse_request("{\"op\":\"ping\"").request.has_value());
  EXPECT_FALSE(parse_request("{\"op\":\"ping\"} trailing").request.has_value());
  EXPECT_FALSE(parse_request("[\"op\"]").request.has_value());
}

// --- round trips ------------------------------------------------------------

TEST(Protocol, RequestRoundTripsThroughRenderAndParse) {
  Request request;
  request.id = "r42";
  request.op = Op::kIdentify;
  request.design = "b03s";
  request.options.base = false;
  request.options.cross_group = true;
  request.options.depth = 3;
  request.options.max_assign = 1;
  request.options.max_errors = 16;
  request.options.timeout_ms = 250;
  request.options.degrade =
      exec::DegradePolicy{true, exec::DegradeLevel::kGroupsOnly};

  const ParsedRequest parsed = parse_request(render_request(request));
  ASSERT_TRUE(parsed.request.has_value()) << parsed.error;
  const Request& back = *parsed.request;
  EXPECT_EQ(back.id, request.id);
  EXPECT_EQ(back.op, request.op);
  EXPECT_EQ(back.design, request.design);
  EXPECT_EQ(back.options.base, request.options.base);
  EXPECT_EQ(back.options.cross_group, request.options.cross_group);
  EXPECT_EQ(back.options.depth, request.options.depth);
  EXPECT_EQ(back.options.max_assign, request.options.max_assign);
  EXPECT_EQ(back.options.max_errors, request.options.max_errors);
  EXPECT_EQ(back.options.timeout_ms, request.options.timeout_ms);
  ASSERT_TRUE(back.options.degrade.has_value());
  EXPECT_TRUE(back.options.degrade->enabled);
  EXPECT_EQ(back.options.degrade->floor, exec::DegradeLevel::kGroupsOnly);
}

TEST(Protocol, ResponseResultBytesSurviveTheWireExactly) {
  // parse_response recovers "result" via its source span, so the client can
  // re-print the server's bytes without re-rendering (fractional metrics and
  // key order included).
  Response response;
  response.id = "r1";
  response.status = Status::kOk;
  response.result = "{\"metrics\":{\"recall\":0.875,\"b\":[1,2.5e-3,null]}}";
  const std::string line = render_response(response);
  const ParsedResponse parsed = parse_response(line);
  ASSERT_TRUE(parsed.response.has_value()) << parsed.error;
  EXPECT_EQ(parsed.response->result, response.result);
  EXPECT_EQ(parsed.response->id, "r1");
  EXPECT_EQ(parsed.response->status, Status::kOk);
}

TEST(Protocol, ErrorResponseRoundTrips) {
  Response response;
  response.id = "r9";
  response.status = Status::kOverloaded;
  response.error = "admission queue full (max-queue=2); retry with backoff";
  const ParsedResponse parsed = parse_response(render_response(response));
  ASSERT_TRUE(parsed.response.has_value()) << parsed.error;
  EXPECT_EQ(parsed.response->status, Status::kOverloaded);
  EXPECT_EQ(parsed.response->error, response.error);
  EXPECT_TRUE(parsed.response->result.empty());
}

TEST(Protocol, ParseResponseRejectsUnknownStatus) {
  const ParsedResponse parsed =
      parse_response("{\"id\":\"r1\",\"status\":\"sideways\"}");
  EXPECT_FALSE(parsed.response.has_value());
  EXPECT_NE(parsed.error.find("unknown status"), std::string::npos);
}

TEST(Protocol, OpAndStatusNamesRoundTrip) {
  for (Op op : {Op::kPing, Op::kStats, Op::kLoad, Op::kLint, Op::kIdentify,
                Op::kEvaluate, Op::kBatch, Op::kLift})
    EXPECT_EQ(parse_op(op_name(op)), op);
  EXPECT_FALSE(parse_op("nonsense").has_value());
  EXPECT_STREQ(status_name(Status::kBadRequest), "bad_request");
  EXPECT_STREQ(status_name(Status::kOverloaded), "overloaded");
}

// --- QoS clamp --------------------------------------------------------------

TEST(Protocol, ClampsClientBudgetToServerCeiling) {
  ArtifactCache cache;
  ExecutorConfig config;
  config.cache = &cache;
  config.max_timeout = milliseconds(500);
  Executor executor(config);

  RequestOptions options;
  EXPECT_EQ(executor.config_for(options).exec.timeout, milliseconds(500));

  options.timeout_ms = 100;  // under the ceiling: honored
  EXPECT_EQ(executor.config_for(options).exec.timeout, milliseconds(100));

  options.timeout_ms = 5000;  // over the ceiling: clamped
  EXPECT_EQ(executor.config_for(options).exec.timeout, milliseconds(500));

  options.timeout_ms = 0;  // "unlimited" still inherits the ceiling
  EXPECT_EQ(executor.config_for(options).exec.timeout, milliseconds(500));
}

TEST(Protocol, UnlimitedCeilingHonorsAnyClientBudget) {
  ArtifactCache cache;
  ExecutorConfig config;
  config.cache = &cache;
  Executor executor(config);

  RequestOptions options;
  EXPECT_EQ(executor.config_for(options).exec.timeout, milliseconds(0));
  options.timeout_ms = 123456;
  EXPECT_EQ(executor.config_for(options).exec.timeout, milliseconds(123456));
}

TEST(Protocol, OptionsOverlayTheBaseConfig) {
  ArtifactCache cache;
  ExecutorConfig config;
  config.cache = &cache;
  config.base.wordrec.cone_depth = 4;
  Executor executor(config);

  RequestOptions options;
  EXPECT_EQ(executor.config_for(options).wordrec.cone_depth, 4u);
  EXPECT_FALSE(executor.config_for(options).use_baseline);

  options.depth = 2;
  options.base = true;
  options.cross_group = true;
  options.max_assign = 1;
  const RunConfig effective = executor.config_for(options);
  EXPECT_EQ(effective.wordrec.cone_depth, 2u);
  EXPECT_TRUE(effective.use_baseline);
  EXPECT_TRUE(effective.wordrec.cross_group_checking);
  EXPECT_EQ(effective.wordrec.max_simultaneous_assignments, 1u);
}

// --- execution --------------------------------------------------------------

TEST(Protocol, ExecutesPing) {
  ArtifactCache cache;
  Executor executor(with_cache(cache));
  Request request;
  request.id = "p1";
  request.op = Op::kPing;
  const Response response = executor.execute(request, exec::CancelToken());
  EXPECT_EQ(response.status, Status::kOk);
  EXPECT_EQ(response.id, "p1");
  EXPECT_EQ(response.result.rfind("{\"schema_version\":1,", 0), 0u)
      << response.result;
  EXPECT_NE(response.result.find("\"protocol\":1"), std::string::npos);
  EXPECT_NE(response.result.find("\"version\":"), std::string::npos);
}

TEST(Protocol, ExecutesLoad) {
  ArtifactCache cache;
  Executor executor(with_cache(cache));
  Request request;
  request.op = Op::kLoad;
  request.design = "b03s";
  const Response response = executor.execute(request, exec::CancelToken());
  EXPECT_EQ(response.status, Status::kOk);
  EXPECT_NE(response.result.find("\"design\":\"b03s\""), std::string::npos);
  EXPECT_NE(response.result.find("\"gates\":169"), std::string::npos);
}

TEST(Protocol, IdentifyResultIsByteIdenticalToSessionJson) {
  ArtifactCache cache;
  Executor executor(with_cache(cache));
  Request request;
  request.op = Op::kIdentify;
  request.design = "b03s";
  const Response response = executor.execute(request, exec::CancelToken());
  ASSERT_EQ(response.status, Status::kOk) << response.error;

  ArtifactCache reference_cache;
  Session session({}, &reference_cache);
  const LoadedDesign design = session.load_netlist("b03s");
  EXPECT_EQ(response.result, session.identify_json(design));
}

TEST(Protocol, LiftResultIsByteIdenticalToSessionJson) {
  ArtifactCache cache;
  Executor executor(with_cache(cache));
  Request request;
  request.op = Op::kLift;
  request.design = "b03s";
  const Response response = executor.execute(request, exec::CancelToken());
  ASSERT_EQ(response.status, Status::kOk) << response.error;

  ArtifactCache reference_cache;
  Session session({}, &reference_cache);
  const LoadedDesign design = session.load_netlist("b03s");
  EXPECT_EQ(response.result, session.lift_json(design));
  EXPECT_NE(response.result.find("\"verdict\":\"equivalent\""),
            std::string::npos);
}

TEST(Protocol, MissingDesignIsAnErrorResponseNotAThrow) {
  ArtifactCache cache;
  Executor executor(with_cache(cache));
  Request request;
  request.op = Op::kIdentify;
  const Response response = executor.execute(request, exec::CancelToken());
  EXPECT_EQ(response.status, Status::kError);
  EXPECT_NE(response.error.find("missing \"design\""), std::string::npos);
  EXPECT_TRUE(response.result.empty());
}

TEST(Protocol, UnknownDesignIsAnErrorResponse) {
  ArtifactCache cache;
  Executor executor(with_cache(cache));
  Request request;
  request.op = Op::kLoad;
  request.design = "/nonexistent_netrev_protocol.bench";
  const Response response = executor.execute(request, exec::CancelToken());
  EXPECT_EQ(response.status, Status::kError);
  EXPECT_FALSE(response.error.empty());
}

TEST(Protocol, PreCancelledRequestReportsCancelled) {
  ArtifactCache cache;
  Executor executor(with_cache(cache));
  exec::CancelToken cancel;
  cancel.request_cancel();
  Request request;
  request.op = Op::kIdentify;
  request.design = "b03s";
  const Response response = executor.execute(request, cancel);
  EXPECT_EQ(response.status, Status::kCancelled);
  EXPECT_TRUE(response.result.empty());
}

TEST(Protocol, RepeatedDesignsHitTheSharedCacheAcrossRequests) {
  ArtifactCache cache;
  Executor executor(with_cache(cache));
  Request request;
  request.op = Op::kIdentify;
  request.design = "b03s";
  ASSERT_EQ(executor.execute(request, exec::CancelToken()).status, Status::kOk);
  const std::uint64_t hits_after_first = cache.hits();
  const Response second = executor.execute(request, exec::CancelToken());
  EXPECT_EQ(second.status, Status::kOk);
  EXPECT_GT(cache.hits(), hits_after_first);
}

TEST(Protocol, StatsCountEveryResponseIncludingRecordedSheds) {
  ArtifactCache cache;
  Executor executor(with_cache(cache));
  Request ping;
  ping.op = Op::kPing;
  (void)executor.execute(ping, exec::CancelToken());
  (void)executor.execute(ping, exec::CancelToken());
  executor.record(Status::kOverloaded);   // what serve does on a shed
  executor.record(Status::kBadRequest);   // ...and on an unparseable line

  const std::string stats = executor.stats_json();
  EXPECT_NE(stats.find("\"total\":4"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"ok\":2"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"overloaded\":1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"bad_request\":1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"cache\":{"), std::string::npos) << stats;
}

// --- health ------------------------------------------------------------------

TEST(Protocol, HealthWithoutASourceReportsZeros) {
  ArtifactCache cache;
  Executor executor(with_cache(cache));
  Request request;
  request.op = Op::kHealth;
  const Response response = executor.execute(request, exec::CancelToken());
  ASSERT_EQ(response.status, Status::kOk);
  EXPECT_NE(response.result.find("\"serve\":{\"uptime_s\":0"),
            std::string::npos)
      << response.result;
  EXPECT_NE(response.result.find("\"isolate\":false"), std::string::npos);
  EXPECT_NE(response.result.find("\"cache\":{\"entries\":0}"),
            std::string::npos);
}

TEST(Protocol, HealthReflectsTheInstalledSource) {
  struct FixedSource : HealthSource {
    HealthSnapshot health() const override {
      HealthSnapshot snap;
      snap.uptime_s = 42;
      snap.inflight = 1;
      snap.queued = 3;
      snap.isolate = true;
      snap.workers_alive = 2;
      snap.workers_restarted = 5;
      snap.workers_quarantined = 4;
      return snap;
    }
  };
  ArtifactCache cache;
  Executor executor(with_cache(cache));
  FixedSource source;
  executor.set_health_source(&source);

  Request request;
  request.op = Op::kHealth;
  const Response response = executor.execute(request, exec::CancelToken());
  ASSERT_EQ(response.status, Status::kOk);
  EXPECT_NE(response.result.find(
                "\"serve\":{\"uptime_s\":42,\"inflight\":1,\"queued\":3,"
                "\"workers\":{\"isolate\":true,\"alive\":2,\"restarted\":5,"
                "\"quarantined\":4}}"),
            std::string::npos)
      << response.result;

  // The same block rides along in stats once a source is installed.
  EXPECT_NE(executor.stats_json().find("\"workers\":{\"isolate\":true"),
            std::string::npos);
}

// --- entry (the worker op) ---------------------------------------------------

TEST(Protocol, EntryReturnsOneJournalLineForTheDesign) {
  ArtifactCache cache;
  Executor executor(with_cache(cache));
  Request request;
  request.op = Op::kEntry;
  request.design = "b03s";
  const Response response = executor.execute(request, exec::CancelToken());
  ASSERT_EQ(response.status, Status::kOk) << response.error;
  // The result is exactly one rendered journal record (sans newline) under
  // the placeholder key — the supervisor re-parses it on the other side.
  EXPECT_EQ(response.result.rfind("{\"v\":1,\"key\":\"0000000000000000\"", 0),
            0u)
      << response.result;
  EXPECT_NE(response.result.find("\"spec\":\"b03s\""), std::string::npos);
  EXPECT_NE(response.result.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_EQ(response.result.find('\n'), std::string::npos);
}

TEST(Protocol, EntryFailuresAreRecordedInTheJournalLineNotTheStatus) {
  // A bad design is a *successful* entry round trip whose journal line says
  // "failed" — only transport/crash problems surface as non-ok statuses.
  ArtifactCache cache;
  Executor executor(with_cache(cache));
  Request request;
  request.op = Op::kEntry;
  request.design = "no-such-design.bench";
  const Response response = executor.execute(request, exec::CancelToken());
  ASSERT_EQ(response.status, Status::kOk) << response.error;
  EXPECT_NE(response.result.find("\"status\":\"failed\""), std::string::npos);
  EXPECT_NE(response.result.find("\"stage\":\"load\""), std::string::npos);
}

TEST(Protocol, EntryWithoutADesignIsAnError) {
  ArtifactCache cache;
  Executor executor(with_cache(cache));
  Request request;
  request.op = Op::kEntry;
  const Response response = executor.execute(request, exec::CancelToken());
  EXPECT_NE(response.status, Status::kOk);
  EXPECT_FALSE(response.error.empty());
}

TEST(Protocol, WorkerCrashedStatusRoundTripsOnTheWire) {
  Response response;
  response.id = "r1";
  response.status = Status::kWorkerCrashed;
  response.error = "worker crashed: signal 11 (SIGSEGV)";
  const ParsedResponse parsed = parse_response(render_response(response));
  ASSERT_TRUE(parsed.response.has_value()) << parsed.error;
  EXPECT_EQ(parsed.response->status, Status::kWorkerCrashed);
  EXPECT_EQ(parsed.response->error, response.error);
}

}  // namespace
}  // namespace netrev::pipeline::protocol
