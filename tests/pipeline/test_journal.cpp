#include "pipeline/journal.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace netrev::pipeline {
namespace {

namespace fs = std::filesystem;

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-test directory: ctest runs each case as its own parallel process,
    // so a shared directory would be wiped out from under a sibling.
    dir_ = fs::temp_directory_path() /
           (std::string("netrev_journal_test_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    path_ = (dir_ / "journal.jsonl").string();
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string read_all() const {
    std::ifstream in(path_);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  }

  fs::path dir_;
  std::string path_;
};

BatchEntry ok_entry() {
  BatchEntry entry;
  entry.spec = "b03s";
  entry.status = EntryStatus::kOk;
  // Nested JSON with quotes and backslashes — the flat-line escaping must
  // round-trip it byte-for-byte.
  entry.identify_json = "{\"multibit_words\":7,\"words\":[\"a\\\\b\"]}";
  entry.analysis_json = "{\"findings\":[]}";
  entry.evaluation_json = "{\"recall\":100.0}";
  entry.diagnostics_json = "";
  entry.degrade_level = "groups";
  entry.degrade_stage = "full";
  entry.multibit_words = 7;
  entry.control_signals = 1;
  entry.lint_errors = 0;
  entry.lint_warnings = 2;
  entry.lint_notes = 3;
  return entry;
}

BatchEntry failed_entry() {
  BatchEntry entry;
  entry.spec = "/tmp/broken.bench";
  entry.status = EntryStatus::kFailed;
  entry.failed_stage = "load";
  entry.error = "cannot open file: /tmp/broken.bench";
  return entry;
}

TEST(JournalKey, IsSixteenLowercaseHexDigits) {
  const std::string key = journal_key(0x1234, 0x5678);
  EXPECT_EQ(key.size(), 16u);
  for (char c : key)
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << key;
}

TEST(JournalKey, CoversBothContentAndOptions) {
  const std::string base = journal_key(1, 2);
  EXPECT_NE(journal_key(3, 2), base) << "content change not in the key";
  EXPECT_NE(journal_key(1, 4), base) << "options change not in the key";
  EXPECT_EQ(journal_key(1, 2), base) << "key is not deterministic";
}

TEST_F(JournalTest, RoundTripsOkAndFailedEntries) {
  {
    JournalWriter writer(path_);
    writer.append("00000000000000aa", ok_entry());
    writer.append("00000000000000bb", failed_entry());
  }
  const std::vector<JournalRecord> records = read_journal(path_);
  ASSERT_EQ(records.size(), 2u);

  const BatchEntry& ok = records[0].entry;
  EXPECT_EQ(records[0].key, "00000000000000aa");
  EXPECT_EQ(ok.spec, "b03s");
  EXPECT_EQ(ok.status, EntryStatus::kOk);
  EXPECT_EQ(ok.identify_json, ok_entry().identify_json);
  EXPECT_EQ(ok.analysis_json, ok_entry().analysis_json);
  EXPECT_EQ(ok.evaluation_json, ok_entry().evaluation_json);
  EXPECT_EQ(ok.diagnostics_json, "");
  EXPECT_EQ(ok.degrade_level, "groups");
  EXPECT_EQ(ok.degrade_stage, "full");
  EXPECT_EQ(ok.multibit_words, 7u);
  EXPECT_EQ(ok.control_signals, 1u);
  EXPECT_EQ(ok.lint_warnings, 2u);
  EXPECT_EQ(ok.lint_notes, 3u);

  const BatchEntry& failed = records[1].entry;
  EXPECT_EQ(records[1].key, "00000000000000bb");
  EXPECT_EQ(failed.status, EntryStatus::kFailed);
  EXPECT_EQ(failed.failed_stage, "load");
  EXPECT_EQ(failed.error, "cannot open file: /tmp/broken.bench");
}

TEST_F(JournalTest, EachEntryIsOneFlushedLine) {
  JournalWriter writer(path_);
  writer.append("00000000000000aa", ok_entry());
  // No close, no flush call from the test: crash-safety demands the line is
  // already durable in the stream's file.
  const std::string text = read_all();
  EXPECT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 1);
}

TEST_F(JournalTest, MissingFileReadsAsEmpty) {
  EXPECT_TRUE(read_journal((dir_ / "never_written.jsonl").string()).empty());
}

TEST_F(JournalTest, TornFinalLineIsIgnored) {
  {
    JournalWriter writer(path_);
    writer.append("00000000000000aa", ok_entry());
    writer.append("00000000000000bb", failed_entry());
  }
  // Simulate a SIGKILL mid-append: chop the file mid-way through line 2.
  std::string text = read_all();
  const std::size_t first_newline = text.find('\n');
  ASSERT_NE(first_newline, std::string::npos);
  std::ofstream(path_, std::ios::trunc)
      << text.substr(0, first_newline + 1 + 25);
  const std::vector<JournalRecord> records = read_journal(path_);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].key, "00000000000000aa");
}

TEST_F(JournalTest, MalformedAndForeignLinesAreSkipped) {
  {
    JournalWriter writer(path_);
    writer.append("00000000000000aa", ok_entry());
  }
  std::ofstream out(path_, std::ios::app);
  out << "not json at all\n";
  out << "{\"v\":3,\"key\":\"00000000000000cc\",\"spec\":\"x\","
         "\"status\":\"ok\"}\n";  // future version (v1 and v2 are ours)
  out << "{\"v\":1,\"key\":\"short\",\"spec\":\"x\",\"status\":\"ok\"}\n";
  out << "{\"v\":1,\"key\":\"00000000000000dd\",\"spec\":\"x\","
         "\"status\":\"skipped\"}\n";  // only ok|failed may be journaled
  out.close();
  const std::vector<JournalRecord> records = read_journal(path_);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].key, "00000000000000aa");
}

TEST_F(JournalTest, DuplicateKeysReadBackInFileOrderSoLaterWins) {
  // read_journal() returns raw records in file order; consumers (run_batch's
  // restore map) overwrite by key, so the later append wins.
  BatchEntry first = ok_entry();
  first.multibit_words = 1;
  BatchEntry second = ok_entry();
  second.multibit_words = 9;
  {
    JournalWriter writer(path_);
    writer.append("00000000000000aa", first);
    writer.append("00000000000000aa", second);
  }
  const std::vector<JournalRecord> records = read_journal(path_);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].entry.multibit_words, 1u);
  EXPECT_EQ(records[1].entry.multibit_words, 9u);
}

TEST_F(JournalTest, AppendingToAnExistingJournalPreservesOldRecords) {
  { JournalWriter(path_).append("00000000000000aa", ok_entry()); }
  { JournalWriter(path_).append("00000000000000bb", failed_entry()); }
  EXPECT_EQ(read_journal(path_).size(), 2u);
}

TEST_F(JournalTest, UnopenablePathThrows) {
  EXPECT_THROW(JournalWriter((dir_ / "no_dir" / "j.jsonl").string()),
               std::runtime_error);
}

TEST_F(JournalTest, RenderedLineMatchesWhatAppendWrites) {
  { JournalWriter(path_).append("00000000000000aa", ok_entry()); }
  EXPECT_EQ(read_all(), render_journal_line("00000000000000aa", ok_entry()));
}

TEST_F(JournalTest, CompactionKeepsTheLastRecordPerKeyInFileOrder) {
  BatchEntry stale = ok_entry();
  stale.multibit_words = 1;
  BatchEntry fresh = ok_entry();
  fresh.multibit_words = 9;
  {
    JournalWriter writer(path_);
    writer.append("00000000000000aa", stale);
    writer.append("00000000000000bb", ok_entry());
    writer.append("00000000000000aa", fresh);  // supersedes the first line
    writer.append("00000000000000cc", failed_entry());
  }

  const CompactionStats stats = compact_journal(path_);
  EXPECT_EQ(stats.kept, 3u);
  EXPECT_EQ(stats.dropped, 1u);

  const std::vector<JournalRecord> records = read_journal(path_);
  ASSERT_EQ(records.size(), 3u);
  // Survivors keep their original relative order.
  EXPECT_EQ(records[0].key, "00000000000000bb");
  EXPECT_EQ(records[1].key, "00000000000000aa");
  EXPECT_EQ(records[2].key, "00000000000000cc");
  // ...and the surviving aa record is the later one.
  EXPECT_EQ(records[1].entry.multibit_words, 9u);
}

TEST_F(JournalTest, CompactionIsResumeEquivalent) {
  // Resume builds a key -> entry map where later lines win; compaction must
  // preserve exactly that view.
  BatchEntry first = ok_entry();
  first.multibit_words = 1;
  BatchEntry second = ok_entry();
  second.multibit_words = 2;
  {
    JournalWriter writer(path_);
    writer.append("00000000000000aa", first);
    writer.append("00000000000000aa", second);
    writer.append("00000000000000bb", failed_entry());
  }
  const std::vector<JournalRecord> before = read_journal(path_);
  (void)compact_journal(path_);
  const std::vector<JournalRecord> after = read_journal(path_);

  const auto winners = [](const std::vector<JournalRecord>& records) {
    std::vector<std::pair<std::string, std::size_t>> out;
    for (const JournalRecord& record : records) {
      bool found = false;
      for (auto& [key, words] : out)
        if (key == record.key) {
          words = record.entry.multibit_words;
          found = true;
        }
      if (!found) out.emplace_back(record.key, record.entry.multibit_words);
    }
    return out;
  };
  EXPECT_EQ(winners(before), winners(after));
}

TEST_F(JournalTest, CompactionDropsTornAndForeignLines) {
  { JournalWriter(path_).append("00000000000000aa", ok_entry()); }
  std::ofstream(path_, std::ios::app)
      << "not json at all\n"
      << "{\"v\":1,\"key\":\"00000000000000bb\",\"spec\":\"x";  // torn
  const CompactionStats stats = compact_journal(path_);
  EXPECT_EQ(stats.kept, 1u);
  EXPECT_EQ(stats.dropped, 0u);
  // The rewritten journal is byte-identical to a freshly written one.
  EXPECT_EQ(read_all(), render_journal_line("00000000000000aa", ok_entry()));
}

TEST_F(JournalTest, CompactingAMissingJournalIsANoOp) {
  const CompactionStats stats = compact_journal(path_);
  EXPECT_EQ(stats.kept, 0u);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_FALSE(fs::exists(path_));
}

TEST_F(JournalTest, CompactionIsIdempotent) {
  {
    JournalWriter writer(path_);
    writer.append("00000000000000aa", ok_entry());
    writer.append("00000000000000aa", ok_entry());
  }
  (void)compact_journal(path_);
  const std::string once = read_all();
  const CompactionStats again = compact_journal(path_);
  EXPECT_EQ(again.kept, 1u);
  EXPECT_EQ(again.dropped, 0u);
  EXPECT_EQ(read_all(), once);
}

// --- v2 (crashed) records ----------------------------------------------------

BatchEntry crashed_entry() {
  BatchEntry entry;
  entry.spec = "b04s";
  entry.status = EntryStatus::kCrashed;
  entry.crash = "signal 11 (SIGSEGV)";
  entry.crash_signal = 11;
  return entry;
}

TEST_F(JournalTest, CrashedEntriesRoundTripAsV2Records) {
  {
    JournalWriter writer(path_);
    writer.append("00000000000000cc", crashed_entry());
  }
  const std::vector<JournalRecord> records = read_journal(path_);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].entry.status, EntryStatus::kCrashed);
  EXPECT_EQ(records[0].entry.crash, "signal 11 (SIGSEGV)");
  EXPECT_EQ(records[0].entry.crash_signal, 11u);
}

TEST_F(JournalTest, OnlyCrashedRecordsAreVersionTwo) {
  // ok/failed lines must keep their v1 bytes: a journal written by this
  // build and read by the previous release (no isolation) must restore
  // every non-crashed entry.
  EXPECT_EQ(render_journal_line("00000000000000aa", ok_entry())
                .rfind("{\"v\":1,", 0),
            0u);
  EXPECT_EQ(render_journal_line("00000000000000bb", failed_entry())
                .rfind("{\"v\":1,", 0),
            0u);
  const std::string crashed =
      render_journal_line("00000000000000cc", crashed_entry());
  EXPECT_EQ(crashed.rfind("{\"v\":2,", 0), 0u);
  EXPECT_NE(crashed.find("\"status\":\"crashed\""), std::string::npos);
  EXPECT_NE(crashed.find("\"crash\":\"signal 11 (SIGSEGV)\""),
            std::string::npos);
  EXPECT_NE(crashed.find("\"signal\":11"), std::string::npos);
}

TEST_F(JournalTest, CrashedStatusRequiresVersionTwo) {
  // A v1 line claiming "crashed" is foreign (v1 predates the status) and
  // must be skipped, not half-parsed.
  std::string line = render_journal_line("00000000000000cc", crashed_entry());
  const std::string::size_type v = line.find("{\"v\":2,");
  ASSERT_EQ(v, 0u);
  line.replace(0, 7, "{\"v\":1,");
  JournalRecord record;
  EXPECT_FALSE(parse_journal_line(line, record));
}

TEST_F(JournalTest, CompactionPreservesCrashedRecords) {
  {
    JournalWriter writer(path_);
    writer.append("00000000000000cc", crashed_entry());
  }
  const CompactionStats stats = compact_journal(path_);
  EXPECT_EQ(stats.kept, 1u);
  EXPECT_EQ(read_all(),
            render_journal_line("00000000000000cc", crashed_entry()));
}

}  // namespace
}  // namespace netrev::pipeline
