#include "pipeline/batch.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "cli/cli.h"
#include "common/thread_pool.h"
#include "itc/family.h"
#include "parser/bench_parser.h"
#include "pipeline/manifest.h"
#include "support/corrupt.h"

namespace netrev {
namespace {

const std::vector<std::string> kFamilies = {"b03s", "b04s", "b08s", "b11s",
                                            "b13s"};

std::string temp_dir() {
  const auto dir = std::filesystem::temp_directory_path() / "netrev_batch_test";
  std::filesystem::create_directories(dir);
  return dir.string();
}

std::string write_file(const std::string& name, const std::string& text) {
  const std::string path = temp_dir() + "/" + name;
  std::ofstream(path) << text;
  return path;
}

// `netrev identify <spec> --json` output without the trailing newline.
std::string single_identify_json(const std::string& spec) {
  std::ostringstream out, err;
  const int exit_code = cli::run_cli({"identify", spec, "--json"}, out, err);
  EXPECT_EQ(exit_code, 0) << spec << ": " << err.str();
  std::string text = out.str();
  if (!text.empty() && text.back() == '\n') text.pop_back();
  return text;
}

TEST(Batch, MatchesSingleRunByteForByteOnFamilyBenchmarks) {
  const pipeline::BatchResult result = pipeline::run_batch(kFamilies);
  ASSERT_EQ(result.entries.size(), kFamilies.size());
  EXPECT_TRUE(result.all_ok()) << result.render_text();
  for (std::size_t i = 0; i < kFamilies.size(); ++i) {
    EXPECT_EQ(result.entries[i].status, pipeline::EntryStatus::kOk);
    EXPECT_EQ(result.entries[i].identify_json,
              single_identify_json(kFamilies[i]))
        << kFamilies[i];
  }
}

TEST(Batch, JsonIsByteStableAcrossJobCounts) {
  ThreadPool::set_global_jobs(1);
  const std::string serial = pipeline::run_batch(kFamilies).to_json();
  ThreadPool::set_global_jobs(4);
  const std::string parallel = pipeline::run_batch(kFamilies).to_json();
  ThreadPool::set_global_jobs(0);  // back to one-per-hardware-thread
  EXPECT_EQ(serial, parallel);
}

TEST(Batch, WarmRerunIsIdenticalAndHitsTheCache) {
  pipeline::ArtifactCache cache;
  pipeline::BatchOptions options;
  options.cache = &cache;
  const pipeline::BatchResult cold = pipeline::run_batch(kFamilies, options);
  const pipeline::BatchResult warm = pipeline::run_batch(kFamilies, options);
  EXPECT_EQ(cold.to_json(), warm.to_json());
  EXPECT_GT(cold.cache_misses, 0u);
  EXPECT_GT(warm.cache_hits, 0u);
  EXPECT_EQ(warm.cache_misses, 0u) << "warm rerun recomputed an artifact";
}

TEST(Batch, JsonCarriesVersionAndSummaryButNoTimings) {
  const pipeline::BatchResult result = pipeline::run_batch({"b03s"});
  const std::string json = result.to_json();
  EXPECT_NE(json.find("\"version\":"), std::string::npos);
  EXPECT_NE(json.find("\"summary\":"), std::string::npos);
  EXPECT_NE(json.find("\"design\":\"b03s\""), std::string::npos);
  // Determinism contract: no wall-clock or cache traffic in the JSON.
  EXPECT_EQ(json.find("seconds"), std::string::npos);
  EXPECT_EQ(json.find("cache"), std::string::npos);
}

TEST(Batch, TextSummaryReportsCacheTraffic) {
  const pipeline::BatchResult result = pipeline::run_batch({"b03s", "b04s"});
  const std::string text = result.render_text();
  EXPECT_NE(text.find("batch: 2 total, 2 ok"), std::string::npos) << text;
  EXPECT_NE(text.find("cache:"), std::string::npos) << text;
}

TEST(Batch, FirstFailureSkipsLaterEntriesDeterministically) {
  const pipeline::BatchResult result =
      pipeline::run_batch({"/nonexistent_netrev.bench", "b03s"});
  ASSERT_EQ(result.entries.size(), 2u);
  EXPECT_EQ(result.entries[0].status, pipeline::EntryStatus::kFailed);
  EXPECT_EQ(result.entries[0].failed_stage, "load");
  EXPECT_FALSE(result.entries[0].error.empty());
  EXPECT_EQ(result.entries[1].status, pipeline::EntryStatus::kSkipped);
  EXPECT_EQ(result.failed, 1u);
  EXPECT_EQ(result.skipped, 1u);
  EXPECT_FALSE(result.all_ok());
}

TEST(Batch, KeepGoingIsolatesTheFailureToItsEntry) {
  pipeline::BatchOptions options;
  options.keep_going = true;
  const pipeline::BatchResult result =
      pipeline::run_batch({"/nonexistent_netrev.bench", "b03s"}, options);
  ASSERT_EQ(result.entries.size(), 2u);
  EXPECT_EQ(result.entries[0].status, pipeline::EntryStatus::kFailed);
  EXPECT_EQ(result.entries[1].status, pipeline::EntryStatus::kOk);
  EXPECT_EQ(result.ok, 1u);
  EXPECT_EQ(result.failed, 1u);
  EXPECT_EQ(result.skipped, 0u);
}

TEST(Batch, CorruptInputsNeverEscapeTheirEntry) {
  // Every corruption kind and several seeds: the damaged entry may recover,
  // fail its load, or fail validation — but the batch itself never throws
  // and the healthy companion entry always completes.
  const std::string source =
      parser::write_bench(itc::build_benchmark("b03s").netlist);
  pipeline::BatchOptions options;
  options.config.parse.permissive = true;
  options.keep_going = true;
  for (const testing::CorruptionKind kind : testing::kAllCorruptionKinds) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const std::string name = std::string("corrupt_") +
                               testing::corruption_name(kind) + "_" +
                               std::to_string(seed) + ".bench";
      const std::string path =
          write_file(name, testing::corrupt(source, kind, seed));
      const pipeline::BatchResult result =
          pipeline::run_batch({path, "b04s"}, options);
      ASSERT_EQ(result.entries.size(), 2u);
      EXPECT_EQ(result.entries[1].status, pipeline::EntryStatus::kOk)
          << corruption_name(kind) << " seed " << seed
          << " broke the healthy entry:\n"
          << result.render_text();
      if (result.entries[0].status == pipeline::EntryStatus::kFailed) {
        EXPECT_FALSE(result.entries[0].error.empty());
      }
    }
  }
}

TEST(Batch, DesignsWithoutReferenceWordsStillSucceed) {
  const std::string path = write_file("combinational.v",
                                      "module tiny (a, b, z);\n"
                                      "  input a;\n"
                                      "  input b;\n"
                                      "  output z;\n"
                                      "  nand U1 (z, a, b);\n"
                                      "endmodule\n");
  const pipeline::BatchResult result = pipeline::run_batch({path});
  ASSERT_EQ(result.entries.size(), 1u);
  EXPECT_EQ(result.entries[0].status, pipeline::EntryStatus::kOk)
      << result.render_text();
  EXPECT_FALSE(result.entries[0].identify_json.empty());
  EXPECT_TRUE(result.entries[0].evaluation_json.empty());
}

// --- spec expansion --------------------------------------------------------

TEST(Manifest, GlobMatchSupportsStarAndQuestionMark) {
  EXPECT_TRUE(pipeline::glob_match("*.bench", "a.bench"));
  EXPECT_FALSE(pipeline::glob_match("*.bench", "a.v"));
  EXPECT_TRUE(pipeline::glob_match("b?3s", "b03s"));
  EXPECT_FALSE(pipeline::glob_match("b?3s", "b113s"));
  EXPECT_TRUE(pipeline::glob_match("*", ""));
  EXPECT_TRUE(pipeline::glob_match("a*b*c", "aXXbYYc"));
  EXPECT_FALSE(pipeline::glob_match("a*b*c", "aXXbYY"));
}

TEST(Manifest, ExpandGlobReturnsSortedMatchesAndRejectsEmpty) {
  const std::string dir = temp_dir() + "/glob";
  std::filesystem::create_directories(dir);
  std::ofstream(dir + "/g2.bench") << "INPUT(a)\n";
  std::ofstream(dir + "/g1.bench") << "INPUT(a)\n";
  std::ofstream(dir + "/other.v") << "module m (a); input a; endmodule\n";

  const std::vector<std::string> files = pipeline::expand_glob(dir + "/*.bench");
  ASSERT_EQ(files.size(), 2u);
  EXPECT_EQ(files[0], dir + "/g1.bench");
  EXPECT_EQ(files[1], dir + "/g2.bench");

  // A glob that matches nothing is an input error (exit 1 at the CLI), not
  // a usage error, so it must not be invalid_argument.
  EXPECT_THROW((void)pipeline::expand_glob(dir + "/*.nothing"),
               std::runtime_error);
}

TEST(Manifest, ManifestEntriesResolveAgainstTheManifestDirectory) {
  const std::string dir = temp_dir() + "/manifest";
  std::filesystem::create_directories(dir);
  std::ofstream(dir + "/tiny.bench") << "INPUT(a)\nOUTPUT(q)\nq = NOT(a)\n";
  std::ofstream(dir + "/run.txt") << "# families first\n"
                                     "b03s\n"
                                     "\n"
                                     "tiny.bench  # sits next to the manifest\n";
  const std::vector<std::string> specs =
      pipeline::expand_specs({dir + "/run.txt"});
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0], "b03s");
  EXPECT_EQ(specs[1], dir + "/tiny.bench");
}

TEST(Manifest, FamiliesAndNetlistPathsPassThroughUntouched) {
  const std::vector<std::string> specs =
      pipeline::expand_specs({"b03s", "missing_file.v", "also_missing.bench"});
  EXPECT_EQ(specs, (std::vector<std::string>{"b03s", "missing_file.v",
                                             "also_missing.bench"}));
}

}  // namespace
}  // namespace netrev
