#include "pipeline/session.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>

#include "analysis/dataflow.h"
#include "itc/family.h"
#include "perf/profile.h"
#include "pipeline/fingerprint.h"
#include "wordrec/trace.h"

namespace netrev {
namespace {

std::string temp_dir() {
  const auto dir =
      std::filesystem::temp_directory_path() / "netrev_session_test";
  std::filesystem::create_directories(dir);
  return dir.string();
}

std::string write_file(const std::string& name, const std::string& text) {
  const std::string path = temp_dir() + "/" + name;
  std::ofstream(path) << text;
  return path;
}

TEST(Session, LoadsFamilyBenchmarksByName) {
  Session session;
  const LoadedDesign design = session.load_netlist("b03s");
  ASSERT_TRUE(design.valid());
  EXPECT_TRUE(design.from_family);
  EXPECT_FALSE(design.from_file);
  EXPECT_EQ(design.nl().gate_count(), 169u);
  EXPECT_EQ(design.identity,
            pipeline::netlist_fingerprint(
                itc::build_benchmark("b03s").netlist));
}

TEST(Session, LoadDispatchesOnFileSuffix) {
  const std::string bench = write_file("tiny.bench",
                                       "INPUT(a)\n"
                                       "INPUT(b)\n"
                                       "OUTPUT(q)\n"
                                       "q = NAND(a, b)\n");
  const std::string verilog = write_file("tiny.v",
                                         "module tiny (a, b, z);\n"
                                         "  input a;\n"
                                         "  input b;\n"
                                         "  output z;\n"
                                         "  nand U1 (z, a, b);\n"
                                         "endmodule\n");
  Session session;
  const LoadedDesign from_bench = session.load_netlist(bench);
  EXPECT_TRUE(from_bench.from_file);
  EXPECT_EQ(from_bench.nl().gate_count(), 1u);
  const LoadedDesign from_verilog = session.load_netlist(verilog);
  EXPECT_TRUE(from_verilog.from_file);
  EXPECT_EQ(from_verilog.nl().gate_count(), 1u);
}

TEST(Session, StrictLoadOfMissingFileThrows) {
  Session session;
  EXPECT_THROW((void)session.load_netlist("/nonexistent_netrev.bench"),
               std::runtime_error);
}

TEST(Session, PermissiveLoadOfMissingFileIsUnusableInput) {
  RunConfig config;
  config.parse.permissive = true;
  Session session(config);
  EXPECT_THROW((void)session.load_netlist("/nonexistent_netrev.bench"),
               UnusableInputError);
  EXPECT_GT(session.diagnostics().fatal_count(), 0u);
}

TEST(Session, IdentifyIsCachedByDesignIdentity) {
  pipeline::ArtifactCache cache;
  Session session({}, &cache);
  const LoadedDesign design = session.load_netlist("b03s");
  const auto first = session.identify(design);
  const auto second = session.identify(design);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_GT(cache.hits(), 0u);

  // Changing a result-affecting knob misses; restoring it hits again.
  session.config().wordrec.cone_depth = 3;
  const auto deeper = session.identify(design);
  EXPECT_NE(deeper.get(), first.get());
  session.config().wordrec.cone_depth = 4;
  EXPECT_EQ(session.identify(design).get(), first.get());
}

TEST(Session, AdoptedNetlistsShareCacheSlotsByStructure) {
  pipeline::ArtifactCache cache;
  Session session({}, &cache);
  const LoadedDesign a = session.adopt_netlist(itc::build_benchmark("b04s").netlist);
  const LoadedDesign b = session.adopt_netlist(itc::build_benchmark("b04s").netlist);
  EXPECT_EQ(a.identity, b.identity);
  EXPECT_EQ(session.identify(a).get(), session.identify(b).get());

  // And a family load of the same benchmark lands on the same identity.
  const LoadedDesign family = session.load_netlist("b04s");
  EXPECT_EQ(family.identity, a.identity);
}

TEST(Session, TraceSinksBypassTheCache) {
  pipeline::ArtifactCache cache;
  Session session({}, &cache);
  const LoadedDesign design = session.load_netlist("b03s");
  const std::uint64_t hits = cache.hits();
  const std::uint64_t misses = cache.misses();

  wordrec::IdentifyTrace trace_a, trace_b;
  session.config().wordrec.trace = &trace_a;
  const auto traced_a = session.identify(design);
  session.config().wordrec.trace = &trace_b;
  const auto traced_b = session.identify(design);
  session.config().wordrec.trace = nullptr;

  EXPECT_NE(traced_a.get(), traced_b.get());  // real runs, not cache copies
  EXPECT_FALSE(trace_a.records.empty());
  EXPECT_EQ(cache.hits(), hits);
  EXPECT_EQ(cache.misses(), misses);

  // The untraced run is cached and agrees with the traced ones.
  const auto cached = session.identify(design);
  EXPECT_EQ(cached->words.count_multibit(),
            traced_a->words.count_multibit());
}

TEST(Session, IdentifyJsonHonorsTheTechniqueSelector) {
  Session session;
  const LoadedDesign design = session.load_netlist("b03s");
  const std::string ours = session.identify_json(design);
  session.config().use_baseline = true;
  const std::string base = session.identify_json(design);
  EXPECT_NE(ours, base);
  EXPECT_EQ(ours.front(), '{');
  EXPECT_EQ(base.front(), '{');
}

TEST(Session, WarmLoadsReplayRecordedDiagnostics) {
  const std::string path = write_file("damaged.bench",
                                      "INPUT(a)\n"
                                      "INPUT(b)\n"
                                      "OUTPUT(q)\n"
                                      "n1 = NAND(a, b)\n"
                                      "n2 = BOGUS(n1)\n"
                                      "q = NOT(n1)\n");
  RunConfig config;
  config.parse.permissive = true;
  pipeline::ArtifactCache cache;

  Session cold(config, &cache);
  diag::Diagnostics cold_diags;
  const LoadedDesign first =
      cold.load_netlist(path, config.parse, cold_diags);
  ASSERT_FALSE(cold_diags.empty());

  Session warm(config, &cache);
  diag::Diagnostics warm_diags;
  const LoadedDesign second =
      warm.load_netlist(path, config.parse, warm_diags);

  EXPECT_EQ(first.identity, second.identity);
  EXPECT_GT(cache.hits(), 0u);
  ASSERT_EQ(cold_diags.entries().size(), warm_diags.entries().size());
  for (std::size_t i = 0; i < cold_diags.entries().size(); ++i)
    EXPECT_EQ(cold_diags.entries()[i].to_string(),
              warm_diags.entries()[i].to_string());
}

TEST(Session, ParseNetlistForLintSkipsRepair) {
  const std::string path = write_file("dangling.bench",
                                      "INPUT(a)\n"
                                      "INPUT(b)\n"
                                      "OUTPUT(q)\n"
                                      "n1 = NAND(a, b)\n"
                                      "n2 = BOGUS(n1)\n"
                                      "q = NOT(n1)\n");
  RunConfig config;
  config.parse.permissive = true;
  Session session(config);
  diag::Diagnostics diags;
  const Session::Parsed parsed = session.parse_netlist(path, diags);
  ASSERT_TRUE(parsed.design.valid());
  ASSERT_NE(parsed.parse_diags, nullptr);
  EXPECT_GT(parsed.parse_diags->error_count(), 0u);
}

TEST(Session, DataflowStageIsCachedByDesignIdentity) {
  pipeline::ArtifactCache cache;
  Session session({}, &cache);
  const LoadedDesign design = session.load_netlist("b03s");
  const auto first = session.dataflow(design);
  const auto second = session.dataflow(design);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_GT(cache.hits(), 0u);
  ASSERT_EQ(first->always.size(), design.nl().net_count());

  // Changing the engine's iteration bound changes the key.
  session.config().analysis.dataflow_max_iterations = 3;
  EXPECT_NE(session.dataflow(design).get(), first.get());
  session.config().analysis.dataflow_max_iterations = 8;
  EXPECT_EQ(session.dataflow(design).get(), first.get());
}

TEST(Session, DataflowStageReportsProfileWork) {
  Session session;
  const LoadedDesign design = session.load_netlist("b03s");
  perf::Profiler::global().enable();  // resets all counters
  (void)session.dataflow(design);
  const std::uint64_t work =
      perf::Profiler::global().counter_value("stage.dataflow_ns");
  const std::string tree = perf::Profiler::global().render_text();
  perf::Profiler::global().disable();
  EXPECT_GT(work, 0u);
  EXPECT_NE(tree.find("dataflow"), std::string::npos);
}

TEST(Session, IdentifyWithDataflowMatchesDefaultOnFamilies) {
  // b03s has no derived constants, so the pruning knob must not move the
  // JSON a byte (the knob's conservative guarantee, end to end).
  Session session;
  const LoadedDesign design = session.load_netlist("b03s");
  const std::string plain = session.identify_json(design);
  session.config().wordrec.use_dataflow = true;
  const std::string pruned = session.identify_json(design);
  EXPECT_EQ(plain, pruned);
}

TEST(Session, AnalyzeSharesTheCachedDataflowStage) {
  pipeline::ArtifactCache cache;
  Session session({}, &cache);
  const LoadedDesign design = session.load_netlist("b03s");
  (void)session.dataflow(design);
  const std::uint64_t misses = cache.misses();
  const auto result = session.analyze(design);
  EXPECT_EQ(result->rules_run, 12u);
  // analyze() added its own artifact miss but reused the dataflow facts
  // instead of recomputing/rekeying them.
  EXPECT_EQ(cache.misses(), misses + 1);
}

TEST(Session, TimedRunsComeBackFromTheCache) {
  pipeline::ArtifactCache cache;
  Session session({}, &cache);
  const LoadedDesign design = session.load_netlist("b03s");
  const eval::TechniqueRun cold = session.run_ours(design);
  const eval::TechniqueRun warm = session.run_ours(design);
  EXPECT_EQ(cold.words.count_multibit(), warm.words.count_multibit());
  EXPECT_EQ(cold.control_signals, warm.control_signals);
  EXPECT_GE(cold.seconds, 0.0);
  EXPECT_GE(warm.seconds, 0.0);
  EXPECT_GT(cache.hits(), 0u);

  const eval::TechniqueRun base = session.run_baseline(design);
  EXPECT_EQ(base.control_signals, 0u);
}

}  // namespace
}  // namespace netrev
