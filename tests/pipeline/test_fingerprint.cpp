#include "pipeline/fingerprint.h"

#include <gtest/gtest.h>

#include "common/diagnostics.h"
#include "itc/family.h"
#include "netlist/netlist.h"
#include "wordrec/trace.h"

namespace netrev::pipeline {
namespace {

TEST(Fingerprint, Fnv1a64IsDeterministicAndSensitive) {
  EXPECT_EQ(fnv1a64(""), kFnvOffset);
  EXPECT_EQ(fnv1a64("netrev"), fnv1a64("netrev"));
  EXPECT_NE(fnv1a64("netrev"), fnv1a64("netreV"));
  EXPECT_NE(fnv1a64("a"), fnv1a64(""));
  // Seed chaining: hashing "ab" in one go differs from restarting on "b".
  EXPECT_EQ(fnv1a64("ab"), fnv1a64("b", fnv1a64("a")));
}

TEST(Fingerprint, MixIsOrderDependent) {
  const std::uint64_t a = fnv1a64("left");
  const std::uint64_t b = fnv1a64("right");
  EXPECT_EQ(mix(a, b), mix(a, b));
  EXPECT_NE(mix(a, b), mix(b, a));
}

TEST(Fingerprint, ParseErrorBudgetOnlyCountsWhenPermissive) {
  parser::ParseOptions strict;
  EXPECT_EQ(fingerprint(strict, 16), fingerprint(strict, 64));

  parser::ParseOptions permissive;
  permissive.permissive = true;
  EXPECT_NE(fingerprint(permissive, 16), fingerprint(permissive, 64));
  EXPECT_NE(fingerprint(strict, 64), fingerprint(permissive, 64));
}

TEST(Fingerprint, ParseFilenameAndLimitsMatter) {
  parser::ParseOptions a, b;
  a.filename = "x.bench";
  b.filename = "y.bench";
  EXPECT_NE(fingerprint(a, 64), fingerprint(b, 64));

  parser::ParseOptions c;
  c.filename = "x.bench";
  c.limits.max_gates = 123;
  EXPECT_NE(fingerprint(a, 64), fingerprint(c, 64));
}

TEST(Fingerprint, WordrecKnobsChangeTheFingerprint) {
  const wordrec::Options base;
  const std::uint64_t fp = fingerprint(base);

  wordrec::Options depth = base;
  depth.cone_depth = 3;
  EXPECT_NE(fingerprint(depth), fp);

  wordrec::Options cross = base;
  cross.cross_group_checking = true;
  EXPECT_NE(fingerprint(cross), fp);

  wordrec::Options assign = base;
  assign.max_simultaneous_assignments = 1;
  EXPECT_NE(fingerprint(assign), fp);
}

TEST(Fingerprint, WordrecObservationPointersAreExcluded) {
  // Trace sinks and shared work budgets observe the run without changing
  // its result, so they must not fragment the cache key space.
  wordrec::Options traced;
  wordrec::IdentifyTrace trace;
  traced.trace = &trace;
  EXPECT_EQ(fingerprint(traced), fingerprint(wordrec::Options{}));
}

TEST(Fingerprint, AnalysisRuleSelectionChangesTheFingerprint) {
  analysis::AnalysisOptions all, some;
  some.enabled_rules = {"comb-cycle"};
  EXPECT_NE(fingerprint(all), fingerprint(some));

  analysis::AnalysisOptions other;
  other.enabled_rules = {"multi-driven"};
  EXPECT_NE(fingerprint(some), fingerprint(other));
}

TEST(Fingerprint, DiagnosticsEntriesChangeTheFingerprint) {
  diag::Diagnostics empty;
  diag::Diagnostics one;
  one.error("dropped line", {"x.bench", 3, 1});
  EXPECT_NE(fingerprint(empty), fingerprint(one));

  diag::Diagnostics same;
  same.error("dropped line", {"x.bench", 3, 1});
  EXPECT_EQ(fingerprint(one), fingerprint(same));

  diag::Diagnostics moved;
  moved.error("dropped line", {"x.bench", 4, 1});
  EXPECT_NE(fingerprint(one), fingerprint(moved));
}

TEST(Fingerprint, NetlistFingerprintIsStructuralAndDeterministic) {
  const netlist::Netlist a = itc::build_benchmark("b03s").netlist;
  const netlist::Netlist b = itc::build_benchmark("b03s").netlist;
  EXPECT_EQ(netlist_fingerprint(a), netlist_fingerprint(b));

  const netlist::Netlist c = itc::build_benchmark("b04s").netlist;
  EXPECT_NE(netlist_fingerprint(a), netlist_fingerprint(c));
}

TEST(Fingerprint, NetlistFingerprintSeesGateTypeChanges) {
  auto build = [](netlist::GateType type) {
    netlist::Netlist nl;
    nl.set_name("fp");
    const netlist::NetId in = nl.add_net("i");
    const netlist::NetId out = nl.add_net("o");
    nl.mark_primary_input(in);
    nl.add_gate(type, out, {in});
    nl.mark_primary_output(out);
    return nl;
  };
  EXPECT_NE(netlist_fingerprint(build(netlist::GateType::kNot)),
            netlist_fingerprint(build(netlist::GateType::kBuf)));
}

}  // namespace
}  // namespace netrev::pipeline
