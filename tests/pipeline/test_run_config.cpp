#include "pipeline/run_config.h"

#include <gtest/gtest.h>

#include "pipeline/fingerprint.h"

namespace netrev {
namespace {

TEST(RunConfig, FingerprintsDelegateToTheOptionHashes) {
  const RunConfig config;
  EXPECT_EQ(config.parse_fingerprint(64),
            pipeline::fingerprint(config.parse, 64));
  EXPECT_EQ(config.wordrec_fingerprint(),
            pipeline::fingerprint(config.wordrec));
  EXPECT_EQ(config.analysis_fingerprint(),
            pipeline::fingerprint(config.analysis));
}

TEST(RunConfig, FieldChangesShowUpOnlyInTheMatchingFingerprint) {
  const RunConfig a;
  RunConfig b;

  b.wordrec.cone_depth = 2;
  EXPECT_NE(a.wordrec_fingerprint(), b.wordrec_fingerprint());
  EXPECT_EQ(a.analysis_fingerprint(), b.analysis_fingerprint());
  EXPECT_EQ(a.parse_fingerprint(64), b.parse_fingerprint(64));

  b.analysis.enabled_rules = {"comb-cycle"};
  EXPECT_NE(a.analysis_fingerprint(), b.analysis_fingerprint());

  b.parse.permissive = true;
  EXPECT_NE(a.parse_fingerprint(64), b.parse_fingerprint(64));
}

TEST(RunConfig, TechniqueSelectorDoesNotAffectStageFingerprints) {
  // use_baseline picks which cached stage to consult ("identify" vs
  // "identify_base"); it must not change the option fingerprints themselves.
  const RunConfig a;
  RunConfig b;
  b.use_baseline = true;
  EXPECT_EQ(a.wordrec_fingerprint(), b.wordrec_fingerprint());
  EXPECT_EQ(a.parse_fingerprint(64), b.parse_fingerprint(64));
  EXPECT_EQ(a.analysis_fingerprint(), b.analysis_fingerprint());
}

TEST(RunConfig, DegradePolicyIsTheOnlyExecFingerprintInput) {
  // The degrade policy changes what identification may produce, so it keys
  // the cache; timeouts and cancellation are observation-only (they decide
  // whether a rung finishes, never what a finished rung computed) and must
  // not fragment cache slots or journal keys.
  const RunConfig a;
  RunConfig b;
  b.exec.timeout = std::chrono::milliseconds(5000);
  b.exec.stage_timeout = std::chrono::milliseconds(100);
  b.exec.cancellable = true;
  EXPECT_EQ(a.exec_fingerprint(), b.exec_fingerprint());

  b.exec.degrade.floor = exec::DegradeLevel::kBaseline;
  EXPECT_NE(a.exec_fingerprint(), b.exec_fingerprint());
  b.exec.degrade = exec::DegradePolicy{};
  b.exec.degrade.enabled = false;
  EXPECT_NE(a.exec_fingerprint(), b.exec_fingerprint());
}

TEST(RunConfig, CacheCapacityNeverEntersAnyFingerprint) {
  // --cache-entries tunes retention, not results; a capacity change must
  // never invalidate cached artifacts or journal entries.
  const RunConfig a;
  RunConfig b;
  b.cache_entries = 0;
  EXPECT_EQ(a.exec_fingerprint(), b.exec_fingerprint());
  EXPECT_EQ(a.wordrec_fingerprint(), b.wordrec_fingerprint());
  EXPECT_EQ(a.parse_fingerprint(64), b.parse_fingerprint(64));
  EXPECT_EQ(a.analysis_fingerprint(), b.analysis_fingerprint());
}

}  // namespace
}  // namespace netrev
