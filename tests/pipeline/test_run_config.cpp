#include "pipeline/run_config.h"

#include <gtest/gtest.h>

#include "pipeline/fingerprint.h"

namespace netrev {
namespace {

TEST(RunConfig, FingerprintsDelegateToTheOptionHashes) {
  const RunConfig config;
  EXPECT_EQ(config.parse_fingerprint(64),
            pipeline::fingerprint(config.parse, 64));
  EXPECT_EQ(config.wordrec_fingerprint(),
            pipeline::fingerprint(config.wordrec));
  EXPECT_EQ(config.analysis_fingerprint(),
            pipeline::fingerprint(config.analysis));
}

TEST(RunConfig, FieldChangesShowUpOnlyInTheMatchingFingerprint) {
  const RunConfig a;
  RunConfig b;

  b.wordrec.cone_depth = 2;
  EXPECT_NE(a.wordrec_fingerprint(), b.wordrec_fingerprint());
  EXPECT_EQ(a.analysis_fingerprint(), b.analysis_fingerprint());
  EXPECT_EQ(a.parse_fingerprint(64), b.parse_fingerprint(64));

  b.analysis.enabled_rules = {"comb-cycle"};
  EXPECT_NE(a.analysis_fingerprint(), b.analysis_fingerprint());

  b.parse.permissive = true;
  EXPECT_NE(a.parse_fingerprint(64), b.parse_fingerprint(64));
}

TEST(RunConfig, TechniqueSelectorDoesNotAffectStageFingerprints) {
  // use_baseline picks which cached stage to consult ("identify" vs
  // "identify_base"); it must not change the option fingerprints themselves.
  const RunConfig a;
  RunConfig b;
  b.use_baseline = true;
  EXPECT_EQ(a.wordrec_fingerprint(), b.wordrec_fingerprint());
  EXPECT_EQ(a.parse_fingerprint(64), b.parse_fingerprint(64));
  EXPECT_EQ(a.analysis_fingerprint(), b.analysis_fingerprint());
}

}  // namespace
}  // namespace netrev
