// End-to-end process-isolation tests with REAL netrev workers: this test
// binary re-execed in worker mode (see tests/support/worker_main.cpp), so
// the full fork/exec/pipe/NDJSON path is the production one.
//
// The chaos tests setenv(NETREV_CHAOS) and run ISOLATED batches only while
// it is set: the spec is inherited by the worker children, which crash at
// the instrumented stage; the parent never reaches a chaos checkpoint on the
// isolated path.  In-process reference runs happen strictly before setenv.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "pipeline/artifact_cache.h"
#include "pipeline/batch.h"
#include "pipeline/client.h"
#include "pipeline/journal.h"
#include "pipeline/serve.h"
#include "pipeline/supervisor.h"

namespace netrev::pipeline {
namespace {

namespace fs = std::filesystem;

// setenv/unsetenv bracketing that survives early test exits.
class ScopedChaos {
 public:
  explicit ScopedChaos(const std::string& spec) {
    ::setenv("NETREV_CHAOS", spec.c_str(), 1);
  }
  ~ScopedChaos() { ::unsetenv("NETREV_CHAOS"); }
};

supervisor::PoolOptions worker_pool_options(std::size_t workers = 2) {
  supervisor::PoolOptions options;  // exe defaults to /proc/self/exe
  options.args = {"worker"};
  options.workers = workers;
  options.restart_backoff = std::chrono::milliseconds(1);
  return options;
}

class IsolationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ::unsetenv("NETREV_CHAOS");
    dir_ = fs::temp_directory_path() /
           (std::string("netrev_isolation_test_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    ::unsetenv("NETREV_CHAOS");
    fs::remove_all(dir_);
  }

  fs::path dir_;
};

TEST_F(IsolationTest, IsolatedBatchIsByteIdenticalToInProcess) {
  const std::vector<std::string> specs = {"b03s", "b04s"};
  BatchOptions plain;
  const std::string reference = run_batch(specs, plain).to_json();

  supervisor::WorkerPool pool(worker_pool_options());
  BatchOptions isolated;
  isolated.pool = &pool;
  const BatchResult result = run_batch(specs, isolated);

  EXPECT_EQ(result.to_json(), reference);
  EXPECT_TRUE(result.all_ok());
  EXPECT_EQ(pool.stats().crashes, 0u);
}

TEST_F(IsolationTest, ChaosCrashIsQuarantinedAndSiblingsAreUntouched) {
  const std::vector<std::string> specs = {"b03s", "b04s", "b08s"};
  // In-process fault-free reference FIRST: once the env var is set, an
  // in-process run of b04s would abort this test process.
  BatchOptions plain;
  const BatchResult reference = run_batch(specs, plain);
  ASSERT_TRUE(reference.all_ok());

  ScopedChaos chaos("abort@identify:b04s");
  supervisor::WorkerPool pool(worker_pool_options());
  BatchOptions isolated;
  isolated.pool = &pool;
  const BatchResult result = run_batch(specs, isolated);

  ASSERT_EQ(result.entries.size(), 3u);
  EXPECT_EQ(result.crashed, 1u);
  EXPECT_EQ(result.ok, 2u);
  EXPECT_FALSE(result.all_ok());

  const BatchEntry& crashed = result.entries[1];
  EXPECT_EQ(crashed.spec, "b04s");
  EXPECT_EQ(crashed.status, EntryStatus::kCrashed);
  EXPECT_EQ(crashed.crash, "signal 6 (SIGABRT)");
  EXPECT_EQ(crashed.crash_signal, 6u);

  // Quarantine means contain and continue: the crash must not dent the
  // neighbors even without --keep-going (crashes are not failures).
  for (const std::size_t i : {std::size_t{0}, std::size_t{2}}) {
    EXPECT_EQ(result.entries[i].status, EntryStatus::kOk) << i;
    EXPECT_EQ(result.entries[i].identify_json,
              reference.entries[i].identify_json)
        << i;
    EXPECT_EQ(result.entries[i].lift_json, reference.entries[i].lift_json)
        << i;
  }
}

TEST_F(IsolationTest, CrashRetriesGiveTheEntryFreshWorkers) {
  ScopedChaos chaos("abort@identify:b03s");  // deterministic: every attempt
  supervisor::WorkerPool pool(worker_pool_options(1));
  BatchOptions isolated;
  isolated.pool = &pool;
  isolated.crash_retries = 3;
  const BatchResult result = run_batch({"b03s"}, isolated);

  ASSERT_EQ(result.entries.size(), 1u);
  EXPECT_EQ(result.entries[0].status, EntryStatus::kCrashed);
  // All three attempts crashed a worker before quarantine.
  EXPECT_EQ(pool.stats().crashes, 3u);
}

TEST_F(IsolationTest, ResumeRestoresQuarantinedEntriesWithoutRerunningThem) {
  const std::string journal = (dir_ / "journal.jsonl").string();
  {
    ScopedChaos chaos("abort@identify:b04s");
    supervisor::WorkerPool pool(worker_pool_options());
    BatchOptions isolated;
    isolated.pool = &pool;
    isolated.resume_path = journal;
    const BatchResult result = run_batch({"b03s", "b04s"}, isolated);
    EXPECT_EQ(result.crashed, 1u);
  }

  // The journal must carry a v2 "crashed" record for b04s.
  std::ifstream in(journal);
  std::string line;
  bool saw_crashed = false;
  while (std::getline(in, line)) {
    JournalRecord record;
    ASSERT_TRUE(parse_journal_line(line, record)) << line;
    if (record.entry.status == EntryStatus::kCrashed) {
      saw_crashed = true;
      EXPECT_EQ(record.entry.spec, "b04s");
      EXPECT_EQ(record.entry.crash, "signal 6 (SIGABRT)");
    }
  }
  EXPECT_TRUE(saw_crashed);

  // Chaos is now OFF; a resumed IN-PROCESS run must restore the quarantined
  // entry from the journal (status preserved) instead of recomputing it.
  BatchOptions resumed;
  resumed.resume_path = journal;
  const BatchResult result = run_batch({"b03s", "b04s"}, resumed);
  ASSERT_EQ(result.entries.size(), 2u);
  EXPECT_EQ(result.resumed, 2u);
  EXPECT_EQ(result.entries[0].status, EntryStatus::kOk);
  EXPECT_EQ(result.entries[1].status, EntryStatus::kCrashed);
  EXPECT_EQ(result.entries[1].crash, "signal 6 (SIGABRT)");
}

// --- serve --isolate ---------------------------------------------------------

class RunningServer {
 public:
  explicit RunningServer(serve::ServeOptions options) {
    options.executor.cache = &cache_;
    server_ = std::make_unique<serve::Server>(std::move(options), &log_);
    server_->start();
    thread_ = std::thread([this] { (void)server_->run(); });
  }
  ~RunningServer() {
    server_->request_drain();
    if (thread_.joinable()) thread_.join();
  }

  client::Endpoint endpoint() const {
    client::Endpoint endpoint;
    endpoint.host = "127.0.0.1";
    endpoint.port = server_->port();
    return endpoint;
  }

 private:
  ArtifactCache cache_;
  std::ostringstream log_;
  std::unique_ptr<serve::Server> server_;
  std::thread thread_;
};

protocol::Request make(protocol::Op op, const std::string& id,
                       const std::string& design = "") {
  protocol::Request request;
  request.id = id;
  request.op = op;
  request.design = design;
  return request;
}

TEST_F(IsolationTest, ServeSurvivesAWorkerCrashAndKeepsAnswering) {
  serve::ServeOptions options;
  options.pool = worker_pool_options(1);
  RunningServer server(options);
  client::Connection connection(server.endpoint());

  protocol::Response poisoned;
  {
    // Workers spawn lazily at dispatch and inherit the env as of that
    // moment, so setting chaos around this one request poisons exactly it.
    ScopedChaos chaos("abort@identify:b04s");
    poisoned =
        connection.round_trip(make(protocol::Op::kIdentify, "r1", "b04s"));
  }
  EXPECT_EQ(poisoned.status, protocol::Status::kWorkerCrashed);
  EXPECT_NE(poisoned.error.find("SIGABRT"), std::string::npos);

  // The daemon is alive and the respawned (chaos-free) worker answers.
  const protocol::Response ok =
      connection.round_trip(make(protocol::Op::kIdentify, "r2", "b03s"));
  EXPECT_EQ(ok.status, protocol::Status::kOk);
  EXPECT_NE(ok.result.find("multibit_words"), std::string::npos);

  // health reflects the crash: one restart, one quarantined request.
  const protocol::Response health =
      connection.round_trip(make(protocol::Op::kHealth, "h1"));
  ASSERT_EQ(health.status, protocol::Status::kOk);
  EXPECT_NE(health.result.find("\"isolate\":true"), std::string::npos);
  EXPECT_NE(health.result.find("\"restarted\":1"), std::string::npos);
  EXPECT_NE(health.result.find("\"quarantined\":1"), std::string::npos);
}

TEST_F(IsolationTest, IsolatedServeMatchesInProcessServeByteForByte) {
  std::string reference;
  {
    RunningServer server(serve::ServeOptions{});
    client::Connection connection(server.endpoint());
    reference =
        connection.round_trip(make(protocol::Op::kIdentify, "r", "b03s"))
            .result;
  }
  serve::ServeOptions options;
  options.pool = worker_pool_options(1);
  RunningServer server(options);
  client::Connection connection(server.endpoint());
  const protocol::Response response =
      connection.round_trip(make(protocol::Op::kIdentify, "r", "b03s"));
  EXPECT_EQ(response.status, protocol::Status::kOk);
  EXPECT_EQ(response.result, reference);
}

TEST_F(IsolationTest, PingAndHealthStayInProcessWhenIsolating) {
  serve::ServeOptions options;
  options.pool = worker_pool_options(1);
  RunningServer server(options);
  client::Connection connection(server.endpoint());

  // No analysis request has run: the pool must still be empty because ping
  // and health never take a worker round trip.
  EXPECT_EQ(connection.round_trip(make(protocol::Op::kPing, "p")).status,
            protocol::Status::kOk);
  const protocol::Response health =
      connection.round_trip(make(protocol::Op::kHealth, "h"));
  ASSERT_EQ(health.status, protocol::Status::kOk);
  EXPECT_NE(health.result.find("\"alive\":0"), std::string::npos);
}

}  // namespace
}  // namespace netrev::pipeline
