#include "itc/profile.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "itc/family.h"

namespace netrev::itc {
namespace {

WordPlan plan(WordKind kind, std::size_t width, std::size_t plain = 0,
              std::size_t pieces = 2) {
  WordPlan p;
  p.kind = kind;
  p.name = "W";
  p.width = width;
  p.plain_bits = plain;
  p.pieces = pieces;
  return p;
}

BenchmarkProfile base_profile() {
  BenchmarkProfile p;
  p.name = "t";
  p.seed = 1;
  return p;
}

TEST(Profile, ExpectedControlSignalsByKind) {
  BenchmarkProfile p = base_profile();
  p.words = {plan(WordKind::kClean, 4),
             plan(WordKind::kControlFromPartial, 4, 2),
             plan(WordKind::kControlFromNotFound, 4),
             plan(WordKind::kControlPair, 4),
             plan(WordKind::kPartialImproved, 4, 2),
             plan(WordKind::kRescuedToPartial, 4, 2),
             plan(WordKind::kPartialBoth, 4),
             plan(WordKind::kNotFoundBoth, 4)};
  p.decoy_control_words = 2;
  // 1 + 1 + 2 + 1 + 1 + 0 + 0 + 2 decoys = 8
  EXPECT_EQ(p.expected_control_signals(), 8u);
}

TEST(Profile, ReferenceBitCount) {
  BenchmarkProfile p = base_profile();
  p.words = {plan(WordKind::kClean, 4), plan(WordKind::kClean, 7)};
  EXPECT_EQ(p.reference_bit_count(), 11u);
}

TEST(ProfileValidation, AcceptsWellFormed) {
  BenchmarkProfile p = base_profile();
  p.words = {plan(WordKind::kClean, 4)};
  EXPECT_NO_THROW(validate_profile(p));
}

TEST(ProfileValidation, RejectsEmptyName) {
  BenchmarkProfile p = base_profile();
  p.name = "";
  EXPECT_THROW(validate_profile(p), std::invalid_argument);
}

TEST(ProfileValidation, RejectsNarrowWords) {
  BenchmarkProfile p = base_profile();
  p.words = {plan(WordKind::kClean, 1)};
  EXPECT_THROW(validate_profile(p), std::invalid_argument);
}

TEST(ProfileValidation, RejectsBadPlainBits) {
  BenchmarkProfile p = base_profile();
  p.words = {plan(WordKind::kControlFromPartial, 4, 0)};
  EXPECT_THROW(validate_profile(p), std::invalid_argument);
  p.words = {plan(WordKind::kControlFromPartial, 4, 4)};
  EXPECT_THROW(validate_profile(p), std::invalid_argument);
}

TEST(ProfileValidation, RejectsBadPieces) {
  BenchmarkProfile p = base_profile();
  p.words = {plan(WordKind::kPartialBoth, 4, 0, 1)};
  EXPECT_THROW(validate_profile(p), std::invalid_argument);
  p.words = {plan(WordKind::kPartialBoth, 4, 0, 5)};
  EXPECT_THROW(validate_profile(p), std::invalid_argument);
}

TEST(ProfileValidation, RejectsFlopBudgetOverrun) {
  BenchmarkProfile p = base_profile();
  p.target_flops = 3;
  p.words = {plan(WordKind::kClean, 4)};
  EXPECT_THROW(validate_profile(p), std::invalid_argument);
}

TEST(FamilyProfiles, AllTwelvePresent) {
  const auto profiles = itc99s_profiles();
  ASSERT_EQ(profiles.size(), 12u);
  EXPECT_EQ(profiles.front().name, "b03s");
  EXPECT_EQ(profiles.back().name, "b18s");
}

TEST(FamilyProfiles, AllValidate) {
  for (const auto& profile : itc99s_profiles())
    EXPECT_NO_THROW(validate_profile(profile)) << profile.name;
}

TEST(FamilyProfiles, FlopBudgetsExactlyMatchTable1) {
  for (const auto& profile : itc99s_profiles()) {
    EXPECT_EQ(profile.reference_bit_count() + profile.scalar_registers,
              profile.target_flops)
        << profile.name;
  }
}

TEST(FamilyProfiles, ControlSignalTargetsMatchTable1) {
  const std::map<std::string, std::size_t> expected = {
      {"b03s", 1}, {"b04s", 1}, {"b05s", 0}, {"b07s", 1},
      {"b08s", 3}, {"b11s", 0}, {"b12s", 7}, {"b13s", 2},
      {"b14s", 4}, {"b15s", 4}, {"b17s", 18}, {"b18s", 36}};
  for (const auto& profile : itc99s_profiles())
    EXPECT_EQ(profile.expected_control_signals(), expected.at(profile.name))
        << profile.name;
}

TEST(FamilyProfiles, LookupByName) {
  EXPECT_EQ(profile_by_name("b14s").name, "b14s");
  EXPECT_THROW(profile_by_name("b99s"), std::invalid_argument);
}

}  // namespace
}  // namespace netrev::itc
