#include "itc/family.h"

#include <gtest/gtest.h>

#include "eval/reference.h"
#include "netlist/stats.h"
#include "netlist/validate.h"

namespace netrev::itc {
namespace {

// Structural checks across the whole family (identification quality is
// covered by tests/integration/test_table1_smoke.cpp).
class FamilyTest : public ::testing::TestWithParam<const char*> {
 protected:
  static const GeneratedBenchmark& bench() {
    static std::map<std::string, GeneratedBenchmark> cache;
    const std::string name = GetParam();
    auto it = cache.find(name);
    if (it == cache.end()) it = cache.emplace(name, build_benchmark(name)).first;
    return it->second;
  }
};

TEST_P(FamilyTest, Validates) {
  const auto report = netlist::validate(bench().netlist);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST_P(FamilyTest, FlopCountMatchesTable1) {
  EXPECT_EQ(bench().netlist.flop_count(), bench().profile.target_flops);
}

TEST_P(FamilyTest, GateCountNearTable1Target) {
  const auto stats = netlist::compute_stats(bench().netlist);
  EXPECT_GE(stats.gates, bench().profile.target_gates);
  // Within ~15% above the target (word logic may overshoot small targets).
  EXPECT_LE(stats.gates, bench().profile.target_gates * 115 / 100 + 80);
}

TEST_P(FamilyTest, ReferenceWordsMatchProfile) {
  const auto reference = eval::extract_reference_words(bench().netlist);
  EXPECT_EQ(reference.words.size(), bench().profile.words.size());
  EXPECT_EQ(reference.indexed_flops, bench().profile.reference_bit_count());
}

TEST_P(FamilyTest, GroundTruthAgreesWithReferenceExtraction) {
  const auto reference = eval::extract_reference_words(bench().netlist);
  for (const auto& word : reference.words) {
    std::string plan_name = word.register_name;
    const auto pos = plan_name.rfind("_reg");
    ASSERT_NE(pos, std::string::npos);
    plan_name.resize(pos);
    ASSERT_TRUE(bench().word_bits.contains(plan_name)) << plan_name;
    EXPECT_EQ(word.bits, bench().word_bits.at(plan_name)) << plan_name;
  }
}

TEST_P(FamilyTest, EmbeddedControlCountMatchesExpectation) {
  EXPECT_EQ(bench().embedded_controls.size(),
            bench().profile.expected_control_signals());
}

INSTANTIATE_TEST_SUITE_P(AllButLargest, FamilyTest,
                         ::testing::Values("b03s", "b04s", "b05s", "b07s",
                                           "b08s", "b11s", "b12s", "b13s",
                                           "b14s", "b15s"));

// The two largest run once, structure-only (kept out of the sweep so a
// failure names them directly).
TEST(FamilyLarge, B17sValidatesAndMatchesCounts) {
  const auto bench = build_benchmark("b17s");
  EXPECT_TRUE(netlist::validate(bench.netlist).ok());
  EXPECT_EQ(bench.netlist.flop_count(), 1415u);
  EXPECT_GE(bench.netlist.gate_count(), 30777u);
}

TEST(FamilyLarge, B18sValidatesAndMatchesCounts) {
  const auto bench = build_benchmark("b18s");
  EXPECT_TRUE(netlist::validate(bench.netlist).ok());
  EXPECT_EQ(bench.netlist.flop_count(), 3320u);
  EXPECT_GE(bench.netlist.gate_count(), 111241u);
}

TEST(Family, BuildUnknownNameThrows) {
  EXPECT_THROW(build_benchmark("b02s"), std::invalid_argument);
}

}  // namespace
}  // namespace netrev::itc
