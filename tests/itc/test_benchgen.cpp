#include "itc/benchgen.h"

#include <gtest/gtest.h>

#include "eval/reference.h"
#include "itc/family.h"
#include "netlist/stats.h"
#include "netlist/validate.h"
#include "parser/verilog_writer.h"

namespace netrev::itc {
namespace {

using netlist::NetId;

BenchmarkProfile tiny_profile() {
  BenchmarkProfile p;
  p.name = "tiny";
  p.seed = 99;
  p.target_gates = 200;
  p.target_flops = 14;
  p.scalar_registers = 2;
  p.decoy_control_words = 1;
  WordPlan clean;
  clean.kind = WordKind::kClean;
  clean.name = "ALPHA";
  clean.width = 4;
  WordPlan ctrl;
  ctrl.kind = WordKind::kControlFromNotFound;
  ctrl.name = "BETA";
  ctrl.width = 4;
  WordPlan hetero;
  hetero.kind = WordKind::kNotFoundBoth;
  hetero.name = "GAMMA";
  hetero.width = 4;
  p.words = {clean, ctrl, hetero};
  return p;
}

TEST(Benchgen, GeneratedNetlistValidates) {
  const auto bench = generate_benchmark(tiny_profile());
  const auto report = netlist::validate(bench.netlist);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(Benchgen, FlopCountMatchesPlan) {
  const auto bench = generate_benchmark(tiny_profile());
  EXPECT_EQ(bench.netlist.flop_count(), 14u);
}

TEST(Benchgen, GateTargetReached) {
  const auto bench = generate_benchmark(tiny_profile());
  EXPECT_GE(bench.netlist.gate_count(), 200u);
  // ... but not overshot by much (filler stops at the target).
  EXPECT_LE(bench.netlist.gate_count(), 260u);
}

TEST(Benchgen, WordBitsAreFlopDInputs) {
  const auto bench = generate_benchmark(tiny_profile());
  for (const auto& [name, bits] : bench.word_bits) {
    EXPECT_EQ(bits.size(), 4u) << name;
    for (NetId bit : bits) EXPECT_TRUE(bench.netlist.feeds_flop(bit)) << name;
  }
}

TEST(Benchgen, RegisterNamesSurviveForReferenceExtraction) {
  const auto bench = generate_benchmark(tiny_profile());
  const auto reference = eval::extract_reference_words(bench.netlist);
  ASSERT_EQ(reference.words.size(), 3u);
  // Reference extraction must agree with the generator's ground truth.
  for (const auto& word : reference.words) {
    std::string plan_name = word.register_name;
    // register base name is "<PLAN>_reg".
    const auto pos = plan_name.rfind("_reg");
    ASSERT_NE(pos, std::string::npos);
    plan_name.resize(pos);
    ASSERT_TRUE(bench.word_bits.contains(plan_name)) << plan_name;
    EXPECT_EQ(word.bits, bench.word_bits.at(plan_name));
  }
}

TEST(Benchgen, ScalarRegistersAreExcludedFromReference) {
  const auto bench = generate_benchmark(tiny_profile());
  const auto reference = eval::extract_reference_words(bench.netlist);
  EXPECT_EQ(reference.flop_count, 14u);
  EXPECT_EQ(reference.indexed_flops, 12u);  // 3 words x 4 bits
}

TEST(Benchgen, DeterministicForEqualSeeds) {
  const auto a = generate_benchmark(tiny_profile());
  const auto b = generate_benchmark(tiny_profile());
  EXPECT_EQ(parser::write_verilog(a.netlist), parser::write_verilog(b.netlist));
}

TEST(Benchgen, DifferentSeedsDifferentFiller) {
  auto profile = tiny_profile();
  const auto a = generate_benchmark(profile);
  profile.seed = 1234;
  const auto b = generate_benchmark(profile);
  EXPECT_NE(parser::write_verilog(a.netlist), parser::write_verilog(b.netlist));
}

TEST(Benchgen, EmbeddedControlsAreRecorded) {
  const auto bench = generate_benchmark(tiny_profile());
  // One from the control word, one from the decoy.
  EXPECT_EQ(bench.embedded_controls.size(), 2u);
}

TEST(Benchgen, RejectsInvalidProfile) {
  auto profile = tiny_profile();
  profile.words[0].width = 1;
  EXPECT_THROW(generate_benchmark(profile), std::invalid_argument);
}

TEST(Benchgen, PrimaryInputsPresent) {
  const auto bench = generate_benchmark(tiny_profile());
  EXPECT_GE(bench.netlist.primary_inputs().size(), 16u);
  EXPECT_FALSE(bench.netlist.primary_outputs().empty());
}

}  // namespace
}  // namespace netrev::itc
