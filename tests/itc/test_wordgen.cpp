#include "itc/wordgen.h"

#include <gtest/gtest.h>

#include "netlist/validate.h"
#include "wordrec/baseline.h"
#include "wordrec/hash_key.h"
#include "wordrec/identify.h"
#include "wordrec/matching.h"

namespace netrev::itc {
namespace {

using netlist::GateType;
using netlist::NetId;
using netlist::Netlist;

struct Forge {
  Netlist nl{"forge"};
  rtl::NetNamer namer{nl, 100};
  Rng rng{7};
  WordForge forge{namer, rng};
  std::vector<NetId> flops;
  std::vector<NetId> pis;

  Forge() {
    for (int i = 0; i < 12; ++i) {
      const NetId pi = nl.add_net("IN" + std::to_string(i));
      nl.mark_primary_input(pi);
      pis.push_back(pi);
    }
    // The flop pool must be flop-DRIVEN before hashing so cone leaves carry
    // the 'f' kind (as in real netlists, where Q nets always have drivers).
    for (int i = 0; i < 12; ++i) {
      const NetId q = nl.add_net("SRC_reg_" + std::to_string(i) + "_");
      nl.add_gate(GateType::kDff, q, {pis[static_cast<std::size_t>(i)]});
      flops.push_back(q);
    }
    forge.set_pools(flops, pis);
  }

  // Give every floating net a sink so validation can run.
  void finalize(const std::vector<NetId>& d_nets) {
    (void)d_nets;
    for (std::size_t n = 0; n < nl.net_count(); ++n) {
      const NetId id = nl.net_id_at(n);
      if (nl.net(id).fanouts.empty()) nl.mark_primary_output(id);
    }
  }

  WordPlan plan(WordKind kind, std::size_t width, std::size_t plain = 0,
                std::size_t pieces = 2) {
    WordPlan p;
    p.kind = kind;
    p.name = "W";
    p.width = width;
    p.plain_bits = plain;
    p.pieces = pieces;
    return p;
  }
};

TEST(WordForge, PoolsMustBeLargeEnough) {
  Netlist nl;
  rtl::NetNamer namer(nl, 100);
  Rng rng(1);
  WordForge forge(namer, rng);
  EXPECT_THROW(forge.set_pools({}, {}), ContractViolation);
}

TEST(WordForge, CleanWordBitsFullyMatch) {
  Forge f;
  const auto word = f.forge.emit_word(f.plan(WordKind::kClean, 4), 0);
  f.finalize(word.d_nets);
  ASSERT_TRUE(netlist::validate(f.nl).ok());

  const wordrec::ConeHasher hasher(f.nl, {});
  const auto first = hasher.signature(word.d_nets[0]);
  for (std::size_t i = 1; i < word.d_nets.size(); ++i)
    EXPECT_TRUE(first.structurally_equal(hasher.signature(word.d_nets[i])));
  EXPECT_TRUE(word.controls_used.empty());
}

TEST(WordForge, CleanShapesAreMutuallyAlien) {
  // Any two different shape indices produce bits that share no subtree key.
  for (std::size_t s1 = 0; s1 < WordForge::kPlainShapeCount; ++s1) {
    for (std::size_t s2 = s1 + 1; s2 < WordForge::kPlainShapeCount; ++s2) {
      Forge f;
      const auto w1 = f.forge.emit_word(f.plan(WordKind::kClean, 2), s1);
      const auto w2 = f.forge.emit_word(f.plan(WordKind::kClean, 2), s2);
      const wordrec::ConeHasher hasher(f.nl, {});
      const auto match = wordrec::compare_bits(hasher.signature(w1.d_nets[0]),
                                               hasher.signature(w2.d_nets[0]));
      EXPECT_FALSE(match.full) << s1 << " vs " << s2;
      EXPECT_FALSE(match.partial) << s1 << " vs " << s2;
    }
  }
}

TEST(WordForge, ControlWordAdjacentBitsOnlyPartiallyMatch) {
  Forge f;
  const auto word =
      f.forge.emit_word(f.plan(WordKind::kControlFromNotFound, 4), 0);
  const wordrec::ConeHasher hasher(f.nl, {});
  for (std::size_t i = 0; i + 1 < word.d_nets.size(); ++i) {
    const auto match = wordrec::compare_bits(hasher.signature(word.d_nets[i]),
                                             hasher.signature(word.d_nets[i + 1]));
    EXPECT_FALSE(match.full);
    EXPECT_TRUE(match.partial);
  }
  ASSERT_EQ(word.controls_used.size(), 1u);
}

TEST(WordForge, ControlWordUnifiesUnderControlAssignment) {
  Forge f;
  const auto word =
      f.forge.emit_word(f.plan(WordKind::kControlFromNotFound, 4), 0);
  const wordrec::ConeHasher hasher(f.nl, {});
  const std::pair<NetId, bool> seeds[] = {{word.controls_used[0], false}};
  const auto prop = wordrec::propagate(f.nl, seeds);
  ASSERT_TRUE(prop.feasible);
  const auto first = hasher.signature(word.d_nets[0], &prop.map);
  for (std::size_t i = 1; i < word.d_nets.size(); ++i)
    EXPECT_TRUE(first.structurally_equal(
        hasher.signature(word.d_nets[i], &prop.map)));
}

TEST(WordForge, PairWordNeedsBothControls) {
  Forge f;
  const auto word = f.forge.emit_word(f.plan(WordKind::kControlPair, 3), 0);
  ASSERT_EQ(word.controls_used.size(), 2u);
  const wordrec::ConeHasher hasher(f.nl, {});

  const auto unified = [&](std::vector<std::pair<NetId, bool>> seeds) {
    const auto prop = wordrec::propagate(f.nl, seeds);
    if (!prop.feasible) return false;
    const auto first = hasher.signature(word.d_nets[0], &prop.map);
    if (!first.root_type.has_value()) return false;
    for (std::size_t i = 1; i < word.d_nets.size(); ++i)
      if (!first.structurally_equal(
              hasher.signature(word.d_nets[i], &prop.map)))
        return false;
    return true;
  };

  EXPECT_FALSE(unified({{word.controls_used[0], false}}));
  EXPECT_FALSE(unified({{word.controls_used[1], false}}));
  EXPECT_TRUE(unified(
      {{word.controls_used[0], false}, {word.controls_used[1], false}}));
}

TEST(WordForge, PartialBothSplitsIntoAlienClusters) {
  Forge f;
  const auto word =
      f.forge.emit_word(f.plan(WordKind::kPartialBoth, 6, 0, 3), 0);
  const wordrec::ConeHasher hasher(f.nl, {});
  // Cluster boundaries at 2 and 4: no match across, full match within.
  const auto across1 = wordrec::compare_bits(hasher.signature(word.d_nets[1]),
                                             hasher.signature(word.d_nets[2]));
  EXPECT_FALSE(across1.full);
  EXPECT_FALSE(across1.partial);
  const auto within = wordrec::compare_bits(hasher.signature(word.d_nets[0]),
                                            hasher.signature(word.d_nets[1]));
  EXPECT_TRUE(within.full);
}

TEST(WordForge, HeteroBitsShareNothing) {
  Forge f;
  const auto word = f.forge.emit_word(f.plan(WordKind::kNotFoundBoth, 6), 0);
  const wordrec::ConeHasher hasher(f.nl, {});
  for (std::size_t i = 0; i + 1 < word.d_nets.size(); ++i) {
    const auto match = wordrec::compare_bits(hasher.signature(word.d_nets[i]),
                                             hasher.signature(word.d_nets[i + 1]));
    EXPECT_FALSE(match.full) << i;
    EXPECT_FALSE(match.partial) << i;
  }
}

TEST(WordForge, RootGatesAreConsecutiveLines) {
  Forge f;
  const auto word =
      f.forge.emit_word(f.plan(WordKind::kControlFromPartial, 5, 2), 0);
  const auto order = f.nl.gates_in_file_order();
  std::vector<std::size_t> positions;
  for (NetId d : word.d_nets)
    for (std::size_t pos = 0; pos < order.size(); ++pos)
      if (f.nl.gate(order[pos]).output == d) positions.push_back(pos);
  ASSERT_EQ(positions.size(), 5u);
  for (std::size_t i = 1; i < positions.size(); ++i)
    EXPECT_EQ(positions[i], positions[i - 1] + 1);
}

TEST(WordForge, FillerNeverEmitsNand) {
  Forge f;
  f.forge.emit_filler(50);
  for (std::size_t g = 0; g < f.nl.gate_count(); ++g)
    EXPECT_NE(f.nl.gate(f.nl.gate_id_at(g)).type, GateType::kNand);
  EXPECT_EQ(f.forge.loose_nets().size(), 1u);
}

TEST(WordForge, FillerEmitsExactCount) {
  Forge f;
  const std::size_t before = f.nl.gate_count();
  f.forge.emit_filler(37);
  EXPECT_EQ(f.nl.gate_count(), before + 37u);
}

TEST(WordForge, ScalarNextIsSeparatorLine) {
  Forge f;
  const NetId q = f.nl.add_net("FLAG_reg");
  const NetId d = f.forge.emit_scalar_next(q);
  const auto drv = f.nl.driver_of(d);
  ASSERT_TRUE(drv.has_value());
  EXPECT_EQ(f.nl.gate(*drv).type, GateType::kNot);
}

}  // namespace
}  // namespace netrev::itc
