#!/usr/bin/env bash
# Sanitizer gate: Debug build with AddressSanitizer + UndefinedBehaviorSanitizer,
# then the full test suite.  The fault-injection harness in particular must be
# clean under both sanitizers — it feeds hundreds of corrupted netlists through
# the permissive pipeline.
#
# Usage: scripts/check.sh [build-dir]   (default: build-asan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DNETREV_SANITIZE=address,undefined
cmake --build "$BUILD_DIR" -j"$(nproc)"

# Make UBSan failures hard errors instead of prints.
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
export ASAN_OPTIONS="detect_leaks=0"

ctest --test-dir "$BUILD_DIR" -j"$(nproc)" --output-on-failure
echo "check.sh: all tests passed under address,undefined sanitizers"
