#!/usr/bin/env bash
# The full quality gate, in order:
#   1. clang-tidy over src/ (skips cleanly when clang-tidy is absent)
#   2. Debug build with AddressSanitizer + UBSan and -Werror
#   3. the full test suite under both sanitizers
#   4. `netrev lint --fail-on=warning` over every family benchmark, both as
#      built-in designs and as generated .bench files (exercising the parser
#      path); any warning-or-worse finding fails the gate
#
# Usage: scripts/check.sh [build-dir]   (default: build-asan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"

scripts/tidy.sh

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DNETREV_SANITIZE=address,undefined \
  -DNETREV_WERROR=ON
cmake --build "$BUILD_DIR" -j"$(nproc)"

# Make UBSan failures hard errors instead of prints.
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
export ASAN_OPTIONS="detect_leaks=0"

ctest --test-dir "$BUILD_DIR" -j"$(nproc)" --output-on-failure

# Lint gate: the shipped example designs must be free of warning-or-worse
# findings (notes — e.g. high-fanout control candidates — are informational).
NETREV="$BUILD_DIR/examples/netrev"
LINT_DIR="$BUILD_DIR/lint-designs"
mkdir -p "$LINT_DIR"
for family in b03s b04s b08s b11s b13s; do
  echo "lint: $family"
  "$NETREV" lint "$family" --fail-on=warning
  "$NETREV" generate "$family" -o "$LINT_DIR" > /dev/null
  "$NETREV" lint "$LINT_DIR/$family.bench" --fail-on=warning
  "$NETREV" lint "$LINT_DIR/$family.v" --fail-on=warning
done

echo "check.sh: tidy + -Werror + sanitizer suite + lint gate all passed"
