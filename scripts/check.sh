#!/usr/bin/env bash
# The full quality gate, in order:
#   1. clang-tidy over src/ (skips cleanly when clang-tidy is absent)
#   2. doc-link gate: every relative Markdown link in docs/ and README.md
#      must resolve to an existing file
#   3. Debug build with AddressSanitizer + UBSan and -Werror
#   4. the full test suite under both sanitizers
#   5. `netrev lint --fail-on=warning` over every family benchmark, both as
#      built-in designs and as generated .bench files (exercising the parser
#      path); any warning-or-worse finding fails the gate, and
#      `lint --diag-json` must be byte-identical at --jobs 1 vs --jobs 8 and
#      with the artifact cache on vs off (--cache-entries 0)
#   6. ThreadSanitizer build (NETREV_SANITIZE=thread) over the parallel
#      identification tests: thread pool, profiler, jobs determinism, and the
#      dataflow/domain analysis suites
#   7. jobs-determinism gate: `evaluate --json` at --jobs 1 vs --jobs $(nproc)
#      must emit byte-identical output on every family benchmark
#   8. giant-family smoke gate: generate b19s (~262K gates), identify it
#      under a hard time budget, and require byte-identical output between
#      the compact core, --legacy-core, and --jobs 8
#   9. batch smoke gate: `netrev batch` over the family benchmarks twice must
#      emit byte-identical JSON at different job counts, and a batch with
#      repeated entries must report artifact-cache hits under --profile
#  10. resume-after-kill gate: a journaled batch SIGKILLed mid-run, then
#      resumed, must emit byte-identical JSON to an uninterrupted run
#  11. lift gate: `netrev lift` over every family benchmark must emit a
#      schema-v1 document whose every operator verified equivalent, and be
#      byte-identical at --jobs 1 vs 8 and with the cache disabled
#  12. serve gate: start the daemon, check `client identify` and
#      `client lift` output is byte-identical to the one-shot CLI, fire
#      concurrent mixed requests, SIGTERM mid-load, and require a clean
#      drain (exit 6, "drained")
#  13. chaos gate: process-level fault isolation under deliberate sabotage —
#      a clean `batch --isolate` run must be byte-identical to the
#      in-process run; NETREV_CHAOS crashing one of five entries must exit 9
#      and quarantine exactly that entry while the other four stay
#      byte-identical; SIGKILLing a live worker (then the batch) must leave
#      a journal `--resume` converges from; and a `serve --isolate` daemon
#      must answer a worker crash with a structured error, keep serving,
#      and still drain cleanly
#
# Usage: scripts/check.sh [build-dir]   (default: build-asan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"
TSAN_DIR="${BUILD_DIR}-tsan"

scripts/tidy.sh

# Doc-link gate (cheap, fails fast): every relative Markdown link in docs/
# and README.md must resolve to an existing file.
python3 scripts/check_doc_links.py

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DNETREV_SANITIZE=address,undefined \
  -DNETREV_WERROR=ON
cmake --build "$BUILD_DIR" -j"$(nproc)"

# Make UBSan failures hard errors instead of prints.
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
export ASAN_OPTIONS="detect_leaks=0"

ctest --test-dir "$BUILD_DIR" -j"$(nproc)" --output-on-failure

# Lint gate: the shipped example designs must be free of warning-or-worse
# findings (notes — e.g. high-fanout control candidates — are informational).
NETREV="$BUILD_DIR/examples/netrev"
LINT_DIR="$BUILD_DIR/lint-designs"
mkdir -p "$LINT_DIR"
for family in b03s b04s b08s b11s b13s; do
  echo "lint: $family"
  "$NETREV" lint "$family" --fail-on=warning
  "$NETREV" generate "$family" -o "$LINT_DIR" > /dev/null
  "$NETREV" lint "$LINT_DIR/$family.bench" --fail-on=warning
  "$NETREV" lint "$LINT_DIR/$family.v" --fail-on=warning
done

# Lint-determinism gate: the full diagnostics JSON (all 12 rules, including
# the dataflow/domain-backed ones) must not depend on the worker count or on
# whether the artifact cache is enabled.
LINT_DET_DIR="$BUILD_DIR/lint-determinism"
mkdir -p "$LINT_DET_DIR"
for family in b03s b04s b08s b11s b13s; do
  echo "lint-determinism: $family"
  "$NETREV" lint "$family" --diag-json --jobs 1 \
    > "$LINT_DET_DIR/$family.j1.json"
  "$NETREV" lint "$family" --diag-json --jobs 8 \
    > "$LINT_DET_DIR/$family.j8.json"
  diff "$LINT_DET_DIR/$family.j1.json" "$LINT_DET_DIR/$family.j8.json"
  "$NETREV" lint "$family" --diag-json --cache-entries 0 \
    > "$LINT_DET_DIR/$family.nocache.json"
  diff "$LINT_DET_DIR/$family.j1.json" "$LINT_DET_DIR/$family.nocache.json"
done

# ThreadSanitizer pass over the concurrency surface: the pool and profiler
# unit tests plus the end-to-end jobs-determinism suite (which drives every
# parallel pipeline stage at 1/2/8 jobs).  TSan is incompatible with ASan, so
# this is a separate build tree.
cmake -B "$TSAN_DIR" -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DNETREV_SANITIZE=thread \
  -DNETREV_WERROR=ON
cmake --build "$TSAN_DIR" -j"$(nproc)"
TSAN_OPTIONS="halt_on_error=1" ctest --test-dir "$TSAN_DIR" -j"$(nproc)" \
  --output-on-failure \
  -R 'ThreadPool|Profiler|JobsDeterminism|Batch|Session|ArtifactCache|BatchResume|Journal|Degradation|Checkpoint|CancelToken|Serve|Protocol|Dataflow|Domain|Lift'

# Jobs-determinism gate: the full CLI output (evaluation + analysis JSON)
# must not depend on the worker count.
JOBS_DIR="$BUILD_DIR/jobs-determinism"
mkdir -p "$JOBS_DIR"
for family in b03s b04s b08s b11s b13s; do
  echo "jobs-determinism: $family"
  "$NETREV" evaluate "$family" --json --jobs 1 > "$JOBS_DIR/$family.j1.json"
  "$NETREV" evaluate "$family" --json --jobs "$(nproc)" > "$JOBS_DIR/$family.jN.json"
  diff "$JOBS_DIR/$family.j1.json" "$JOBS_DIR/$family.jN.json"
done

# Giant-family smoke gate: the data-oriented core at scale.  Generate the
# smallest giant profile (b19s, ~262K gates), identify it under a hard time
# budget, and require the compact core's output to be byte-identical to the
# legacy pointer core and to itself at --jobs 8.  Sanitized debug builds run
# several times slower than release, hence the generous budget; a hang or a
# byte diff is what this gate exists to catch.
GIANT_DIR="$BUILD_DIR/giant-smoke"
mkdir -p "$GIANT_DIR"
echo "giant-smoke: generate b19s"
timeout 300 "$NETREV" generate b19s -o "$GIANT_DIR" > /dev/null
echo "giant-smoke: identify (compact core)"
timeout 1800 "$NETREV" identify b19s --json > "$GIANT_DIR/compact.json"
echo "giant-smoke: identify (--legacy-core)"
timeout 1800 "$NETREV" identify b19s --json --legacy-core \
  > "$GIANT_DIR/legacy.json"
diff "$GIANT_DIR/compact.json" "$GIANT_DIR/legacy.json"
echo "giant-smoke: identify (--jobs 8)"
timeout 1800 "$NETREV" identify b19s --json --jobs 8 \
  > "$GIANT_DIR/jobs8.json"
diff "$GIANT_DIR/compact.json" "$GIANT_DIR/jobs8.json"

# Batch smoke gate.  The artifact cache is in-memory, so cross-invocation
# hits cannot exist; instead (a) two independent runs at different job counts
# must emit byte-identical JSON, and (b) one run with every spec listed twice
# must satisfy the duplicates from the cache (visible in the profile).
BATCH_DIR="$BUILD_DIR/batch-smoke"
mkdir -p "$BATCH_DIR"
echo "batch-smoke: determinism"
"$NETREV" batch b03s b04s b08s b11s b13s --json --jobs 1 \
  > "$BATCH_DIR/run1.json"
"$NETREV" batch b03s b04s b08s b11s b13s --json --jobs "$(nproc)" \
  > "$BATCH_DIR/run2.json"
diff "$BATCH_DIR/run1.json" "$BATCH_DIR/run2.json"
echo "batch-smoke: cache hits"
"$NETREV" batch b03s b04s b03s b04s --json --profile \
  > "$BATCH_DIR/warm.out"
grep -E 'cache\.hits: *[1-9]' "$BATCH_DIR/warm.out" > /dev/null || {
  echo "batch-smoke: expected nonzero cache.hits in --profile output" >&2
  exit 1
}
"$NETREV" --version

# Resume-after-kill gate.  Start a journaled batch over the family
# benchmarks, SIGKILL it mid-run, resume from the journal, and require the
# resumed output to be byte-identical to an uninterrupted run.  The journal
# must also have restored at least one entry when the kill landed mid-batch
# (a too-fast run that finished before the kill simply passes the diff).
RESUME_DIR="$BUILD_DIR/resume-smoke"
rm -rf "$RESUME_DIR"
mkdir -p "$RESUME_DIR"
JOURNAL="$RESUME_DIR/journal.jsonl"
FAMILIES=(b03s b04s b08s b11s b13s)
echo "resume-smoke: uninterrupted reference"
"$NETREV" batch "${FAMILIES[@]}" --json --jobs 1 > "$RESUME_DIR/reference.json"
echo "resume-smoke: kill mid-run"
"$NETREV" batch "${FAMILIES[@]}" --json --jobs 1 --resume "$JOURNAL" \
  > "$RESUME_DIR/killed.json" 2> /dev/null &
BATCH_PID=$!
# Give the run long enough to journal some entries but not (usually) finish.
sleep 0.2
kill -KILL "$BATCH_PID" 2> /dev/null || true
wait "$BATCH_PID" 2> /dev/null || true
echo "resume-smoke: resume ($(wc -l < "$JOURNAL" 2> /dev/null || echo 0) journaled)"
"$NETREV" batch "${FAMILIES[@]}" --json --jobs 1 --resume "$JOURNAL" \
  > "$RESUME_DIR/resumed.json"
diff "$RESUME_DIR/reference.json" "$RESUME_DIR/resumed.json"

# Lift gate.  Every family benchmark must lift to a schema-v1 word-level
# document in which every operator's bit-blasted model proved simulation-
# equivalent to the original cones, and the bytes must not depend on the
# worker count or the artifact cache.
LIFT_DIR="$BUILD_DIR/lift-smoke"
mkdir -p "$LIFT_DIR"
for family in b03s b04s b08s b11s b13s; do
  echo "lift-smoke: $family"
  "$NETREV" lift "$family" > "$LIFT_DIR/$family.json"
  grep -q '^{"schema_version":1,' "$LIFT_DIR/$family.json" || {
    echo "lift-smoke: $family document is not schema-version stamped" >&2
    exit 1
  }
  grep -q '"verdict":"equivalent"' "$LIFT_DIR/$family.json" || {
    echo "lift-smoke: $family lift did not verify equivalent" >&2
    exit 1
  }
  if grep -q '"verified":false' "$LIFT_DIR/$family.json"; then
    echo "lift-smoke: $family has an unverified operator" >&2
    exit 1
  fi
  "$NETREV" lift "$family" --jobs 8 > "$LIFT_DIR/$family.j8.json"
  diff "$LIFT_DIR/$family.json" "$LIFT_DIR/$family.j8.json"
  "$NETREV" lift "$family" --cache-entries 0 > "$LIFT_DIR/$family.nocache.json"
  diff "$LIFT_DIR/$family.json" "$LIFT_DIR/$family.nocache.json"
done

# Serve gate.  Start the daemon on an ephemeral port, require `client
# identify` output byte-identical to the one-shot CLI, then SIGTERM it with
# concurrent requests in flight and require a clean drain: exit code 6 and
# the "drained" trailer.  Shed clients (exit 8) are expected under load.
SERVE_DIR="$BUILD_DIR/serve-smoke"
rm -rf "$SERVE_DIR"
mkdir -p "$SERVE_DIR"
echo "serve-smoke: start daemon"
"$NETREV" serve --listen 127.0.0.1:0 --max-inflight 2 --max-queue 4 \
  --drain-timeout 30000 \
  > "$SERVE_DIR/serve.out" 2> "$SERVE_DIR/serve.err" &
SERVE_PID=$!
PORT=""
for _ in $(seq 1 100); do
  PORT=$(sed -n 's/^netrev serve listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
    "$SERVE_DIR/serve.out")
  [ -n "$PORT" ] && break
  sleep 0.1
done
[ -n "$PORT" ] || {
  echo "serve-smoke: daemon never reported its port" >&2
  cat "$SERVE_DIR/serve.err" >&2
  exit 1
}

echo "serve-smoke: byte-equivalence with the one-shot CLI"
"$NETREV" identify b03s --json > "$SERVE_DIR/oneshot.json"
"$NETREV" client identify b03s --connect "127.0.0.1:$PORT" \
  > "$SERVE_DIR/served.json"
diff "$SERVE_DIR/oneshot.json" "$SERVE_DIR/served.json"
"$NETREV" lift b03s > "$SERVE_DIR/oneshot-lift.json"
"$NETREV" client lift b03s --connect "127.0.0.1:$PORT" \
  > "$SERVE_DIR/served-lift.json"
diff "$SERVE_DIR/oneshot-lift.json" "$SERVE_DIR/served-lift.json"

echo "serve-smoke: mixed ops"
"$NETREV" client ping --connect "127.0.0.1:$PORT" > /dev/null
"$NETREV" client load b04s --connect "127.0.0.1:$PORT" > /dev/null
"$NETREV" client stats --connect "127.0.0.1:$PORT" > "$SERVE_DIR/stats.json"
grep '"hits":' "$SERVE_DIR/stats.json" > /dev/null

echo "serve-smoke: SIGTERM mid-load drains cleanly"
CLIENT_PIDS=()
for family in b03s b04s b08s b11s; do
  "$NETREV" client identify "$family" --connect "127.0.0.1:$PORT" \
    > /dev/null 2>&1 &
  CLIENT_PIDS+=($!)
done
sleep 0.1
kill -TERM "$SERVE_PID"
SERVE_RC=0
wait "$SERVE_PID" || SERVE_RC=$?
for pid in "${CLIENT_PIDS[@]}"; do
  wait "$pid" || true  # shed/cancelled clients are fine; lost ones are not
done
[ "$SERVE_RC" -eq 6 ] || {
  echo "serve-smoke: expected drain exit code 6, got $SERVE_RC" >&2
  cat "$SERVE_DIR/serve.err" >&2
  exit 1
}
grep -q "netrev serve drained" "$SERVE_DIR/serve.out" || {
  echo "serve-smoke: missing 'netrev serve drained' trailer" >&2
  exit 1
}

# Chaos gate.  Process-level fault isolation under deliberate sabotage.
# abort@ rather than segv@ because ASan intercepts raise(SIGSEGV) and turns
# it into exit(1); no --worker-mem because RLIMIT_AS breaks the sanitizer's
# shadow mappings.  SIGABRT reaches the supervisor unchanged.
CHAOS_DIR="$BUILD_DIR/chaos-smoke"
rm -rf "$CHAOS_DIR"
mkdir -p "$CHAOS_DIR"

echo "chaos-smoke: clean isolated batch matches the in-process run"
"$NETREV" batch "${FAMILIES[@]}" --json --jobs 1 > "$CHAOS_DIR/reference.json"
"$NETREV" batch "${FAMILIES[@]}" --json --jobs 1 --isolate \
  > "$CHAOS_DIR/isolated.json"
diff "$CHAOS_DIR/reference.json" "$CHAOS_DIR/isolated.json"

echo "chaos-smoke: poisoned entry is quarantined, siblings untouched"
CHAOS_RC=0
NETREV_CHAOS="abort@identify:b08s" "$NETREV" batch "${FAMILIES[@]}" --json \
  --jobs 1 --isolate > "$CHAOS_DIR/chaos.json" 2> "$CHAOS_DIR/chaos.err" \
  || CHAOS_RC=$?
[ "$CHAOS_RC" -eq 9 ] || {
  echo "chaos-smoke: expected worker-crashed exit code 9, got $CHAOS_RC" >&2
  cat "$CHAOS_DIR/chaos.err" >&2
  exit 1
}
python3 - "$CHAOS_DIR/reference.json" "$CHAOS_DIR/chaos.json" b08s <<'PY'
import json, sys
ref = {e["design"]: e for e in json.load(open(sys.argv[1]))["entries"]}
chaos_doc = json.load(open(sys.argv[2]))
chaos = {e["design"]: e for e in chaos_doc["entries"]}
victim = sys.argv[3]
entry = chaos[victim]
assert entry["status"] == "crashed", entry
assert entry["crash"] == "signal 6 (SIGABRT)", entry
assert entry["signal"] == 6, entry
assert chaos_doc["summary"]["crashed"] == 1, chaos_doc["summary"]
for design, reference in ref.items():
    if design == victim:
        continue
    assert chaos[design] == reference, design + " diverged under chaos"
PY

echo "chaos-smoke: SIGKILL a live worker mid-batch, then resume"
CHAOS_JOURNAL="$CHAOS_DIR/journal.jsonl"
"$NETREV" batch "${FAMILIES[@]}" --json --jobs 1 --isolate \
  --resume "$CHAOS_JOURNAL" > "$CHAOS_DIR/killed.json" 2> /dev/null &
BATCH_PID=$!
sleep 0.3
# The worker dies first (the supervisor must absorb it), then the batch
# itself; a too-fast run that already finished simply passes the diff.
pkill -KILL -P "$BATCH_PID" 2> /dev/null || true
sleep 0.2
kill -KILL "$BATCH_PID" 2> /dev/null || true
wait "$BATCH_PID" 2> /dev/null || true
echo "chaos-smoke: resume ($(wc -l < "$CHAOS_JOURNAL" 2> /dev/null || echo 0) journaled)"
"$NETREV" batch "${FAMILIES[@]}" --json --jobs 1 --isolate \
  --resume "$CHAOS_JOURNAL" > "$CHAOS_DIR/resumed.json"
diff "$CHAOS_DIR/reference.json" "$CHAOS_DIR/resumed.json"

echo "chaos-smoke: serve --isolate survives a worker crash"
NETREV_CHAOS="abort@identify:b04s" "$NETREV" serve --listen 127.0.0.1:0 \
  --isolate > "$CHAOS_DIR/serve.out" 2> "$CHAOS_DIR/serve.err" &
CHAOS_SERVE_PID=$!
PORT=""
for _ in $(seq 1 100); do
  PORT=$(sed -n 's/^netrev serve listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
    "$CHAOS_DIR/serve.out")
  [ -n "$PORT" ] && break
  sleep 0.1
done
[ -n "$PORT" ] || {
  echo "chaos-smoke: daemon never reported its port" >&2
  cat "$CHAOS_DIR/serve.err" >&2
  exit 1
}
CLIENT_RC=0
"$NETREV" client identify b04s --connect "127.0.0.1:$PORT" \
  > /dev/null 2> "$CHAOS_DIR/client.err" || CLIENT_RC=$?
[ "$CLIENT_RC" -eq 9 ] || {
  echo "chaos-smoke: expected client exit 9 for a crashed worker, got $CLIENT_RC" >&2
  cat "$CHAOS_DIR/client.err" >&2
  exit 1
}
grep -q "worker crashed: signal 6 (SIGABRT)" "$CHAOS_DIR/client.err"
# The daemon is unharmed: the next request (an unpoisoned design) must be
# byte-identical to the one-shot CLI, and health must show the casualty.
"$NETREV" client identify b03s --connect "127.0.0.1:$PORT" \
  > "$CHAOS_DIR/after-crash.json"
diff "$SERVE_DIR/oneshot.json" "$CHAOS_DIR/after-crash.json"
"$NETREV" client health --connect "127.0.0.1:$PORT" > "$CHAOS_DIR/health.json"
grep -q '"quarantined":1' "$CHAOS_DIR/health.json"
kill -TERM "$CHAOS_SERVE_PID"
CHAOS_SERVE_RC=0
wait "$CHAOS_SERVE_PID" || CHAOS_SERVE_RC=$?
[ "$CHAOS_SERVE_RC" -eq 6 ] || {
  echo "chaos-smoke: expected drain exit code 6, got $CHAOS_SERVE_RC" >&2
  cat "$CHAOS_DIR/serve.err" >&2
  exit 1
}

echo "check.sh: tidy + doc-links + -Werror + sanitizer suite + lint gate + lint-determinism + tsan + jobs-determinism + giant-smoke + batch-smoke + resume-smoke + lift-smoke + serve-smoke + chaos-smoke all passed"
