#!/usr/bin/env bash
# clang-tidy gate: runs the checks from .clang-tidy over every source file in
# src/ using a compile database.  Containers without clang-tidy (the CI image
# ships only gcc) skip with success so check.sh stays runnable everywhere.
#
# Usage: scripts/tidy.sh [build-dir]   (default: build-tidy)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tidy}"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "tidy.sh: clang-tidy not found; skipping (install clang-tidy to enable)"
  exit 0
fi

cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "tidy.sh: no compile database in $BUILD_DIR" >&2
  exit 1
fi

mapfile -t SOURCES < <(find src -name '*.cpp' | sort)
echo "tidy.sh: linting ${#SOURCES[@]} files"
clang-tidy -p "$BUILD_DIR" --quiet "${SOURCES[@]}"
echo "tidy.sh: clean"
