#!/usr/bin/env python3
"""Relative-link checker for the Markdown docs.

Scans README.md and everything under docs/ for Markdown links and image
references, resolves each relative target against the file it appears in,
and fails (exit 1) listing every target that does not exist.  External
links (http/https/mailto) and pure in-page anchors (#...) are skipped;
anchors on relative links are stripped before the existence check.

Usage: scripts/check_doc_links.py [repo-root]
"""

import re
import sys
from pathlib import Path

# [text](target) and ![alt](target); target ends at the first unescaped ')'.
LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def doc_files(root: Path):
    files = [root / "README.md"]
    files += sorted((root / "docs").glob("**/*.md"))
    return [f for f in files if f.is_file()]


def check(root: Path) -> int:
    broken = []
    for doc in doc_files(root):
        in_code_fence = False
        for lineno, line in enumerate(
            doc.read_text(encoding="utf-8").splitlines(), start=1
        ):
            if line.lstrip().startswith("```"):
                in_code_fence = not in_code_fence
                continue
            if in_code_fence:
                continue
            for match in LINK.finditer(line):
                target = match.group(1)
                if target.startswith(SKIP_PREFIXES):
                    continue
                path = target.split("#", 1)[0]
                if not path:
                    continue
                resolved = (doc.parent / path).resolve()
                if not resolved.exists():
                    broken.append(
                        f"{doc.relative_to(root)}:{lineno}: broken link "
                        f"-> {target}"
                    )
    if broken:
        print("\n".join(broken), file=sys.stderr)
        print(f"check_doc_links: {len(broken)} broken link(s)", file=sys.stderr)
        return 1
    print(f"check_doc_links: OK ({len(doc_files(root))} files scanned)")
    return 0


if __name__ == "__main__":
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(__file__).parent.parent
    sys.exit(check(root.resolve()))
