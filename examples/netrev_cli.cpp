// The `netrev` command-line tool; see src/cli/cli.h for the subcommands.
#include <iostream>

#include "cli/cli.h"

int main(int argc, char** argv) {
  return netrev::cli::run_cli(argc, argv, std::cout, std::cerr);
}
