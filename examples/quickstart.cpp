// Quickstart: parse a gate-level netlist, run both word-identification
// techniques, and print the recovered words.
//
//   ./quickstart [netlist.v]
//
// Without an argument it demonstrates the flow on a small built-in design
// (an RTL module synthesized on the spot).
#include <cstdio>
#include <string>

#include "pipeline/session.h"
#include "rtl/module.h"
#include "rtl/synth.h"
#include "wordrec/identify.h"

using namespace netrev;

namespace {

// A small design: two 8-bit registers, one muxed between an input and the
// other's value, one accumulating.
netlist::Netlist demo_design() {
  rtl::Module module("quickstart_demo");
  const auto din = module.add_input("DIN", 8);
  const auto load = module.add_input("LOAD", 1);
  const auto hold = module.add_register("HOLD", 8);
  const auto acc = module.add_register("ACC", 8);
  module.set_next("HOLD", rtl::mux(load, hold, din));
  module.set_next("ACC", rtl::add(acc, hold));
  module.add_output("DOUT", acc);
  return rtl::synthesize(module).netlist;
}

void print_words(const char* label, const wordrec::WordSet& words,
                 const netlist::Netlist& nl) {
  std::printf("\n%s found %zu multi-bit words:\n", label,
              words.count_multibit());
  for (const wordrec::Word& word : words.words) {
    if (word.width() < 2) continue;
    std::printf("  [%zu bits]", word.width());
    for (netlist::NetId bit : word.bits)
      std::printf(" %s", nl.net(bit).name.c_str());
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  // One Session fronts the whole pipeline: loading (any format), both
  // identification techniques, and the reference extraction, with results
  // cached by content so repeated calls are free.
  Session session;
  const LoadedDesign design = argc > 1 ? session.load_netlist(argv[1])
                                       : session.adopt_netlist(demo_design());
  const netlist::Netlist& nl = design.nl();
  std::printf("design '%s': %zu gates, %zu nets, %zu flops\n",
              nl.name().c_str(), nl.gate_count(), nl.net_count(),
              nl.flop_count());

  const eval::TechniqueRun base = session.run_baseline(design);
  const eval::TechniqueRun ours = session.run_ours(design);

  print_words("shape hashing (Base)", base.words, nl);
  print_words("control-signal identification (Ours)", ours.words, nl);
  std::printf("\nOurs used %zu control signals, %zu reduction trials\n",
              ours.control_signals, ours.stats.reduction_trials);

  const auto reference = session.reference(design);
  if (!reference->words.empty()) {
    std::printf("\ngolden reference (from register names): %zu words\n",
                reference->words.size());
    for (const auto& word : reference->words)
      std::printf("  %s: %zu bits\n", word.register_name.c_str(),
                  word.width());
  }
  return 0;
}
