// Control-signal explorer: shows §2.4/§2.5 in isolation on a benchmark.
//
// For every partially-matching subgroup the identifier encounters, prints
// the relevant control signals it discovered, the assignment trials, and —
// for unified words — a materialized reduced netlist summary (the artifact
// the paper hands to downstream reverse-engineering tools).
//
//   ./control_explorer [benchmark | netlist.v]
#include <cstdio>
#include <string>

#include "netlist/stats.h"
#include "pipeline/session.h"
#include "wordrec/identify.h"
#include "wordrec/reduce.h"

using namespace netrev;

int main(int argc, char** argv) {
  const std::string which = argc > 1 ? argv[1] : "b12s";
  // Session::load_netlist dispatches on the spec itself (family benchmark
  // name vs netlist file), replacing the manual format branch this example
  // used to carry.
  Session session;
  const LoadedDesign design = session.load_netlist(which);
  const netlist::Netlist& nl = design.nl();

  const netlist::NetlistStats stats = netlist::compute_stats(nl);
  std::printf("design %s: %s\n\n", nl.name().c_str(),
              stats.to_string().c_str());

  const wordrec::Options& options = session.config().wordrec;
  const auto identified = session.identify(design);
  const wordrec::IdentifyResult& result = *identified;

  std::printf("pipeline stats:\n");
  std::printf("  potential-bit groups:        %zu\n", result.stats.groups);
  std::printf("  subgroups:                   %zu\n", result.stats.subgroups);
  std::printf("  partially-matching subgroups:%zu\n",
              result.stats.partial_subgroups);
  std::printf("  control-signal candidates:   %zu\n",
              result.stats.control_signal_candidates);
  std::printf("  reduction trials:            %zu\n",
              result.stats.reduction_trials);
  std::printf("  subgroups unified:           %zu\n",
              result.stats.unified_subgroups);

  std::printf("\ncontrol signals used in successful unifications (%zu):\n",
              result.used_control_signals.size());
  for (netlist::NetId signal : result.used_control_signals)
    std::printf("  %s\n", nl.net(signal).name.c_str());

  std::printf("\nunified words:\n");
  for (const wordrec::UnifiedWord& word : result.unified) {
    std::printf("  %zu bits:", word.bits.size());
    for (netlist::NetId bit : word.bits)
      std::printf(" %s", nl.net(bit).name.c_str());
    std::printf("\n    assignment:");
    for (const auto& [signal, value] : word.assignment)
      std::printf(" %s=%d", nl.net(signal).name.c_str(), value ? 1 : 0);

    // Materialize the reduced circuit for this assignment — the §2.1
    // hand-off artifact for downstream tools.
    const auto propagated = wordrec::propagate(nl, word.assignment);
    const netlist::Netlist reduced =
        wordrec::materialize_reduction(nl, propagated.map, options);
    std::printf("\n    reduced netlist: %zu -> %zu gates (%zu nets assigned)\n",
                nl.gate_count(), reduced.gate_count(), propagated.map.size());
  }
  if (result.unified.empty())
    std::printf("  (none — try b08s, b12s, b15s or b18s)\n");
  return 0;
}
