// Emits the synthetic ITC99-style family to disk as structural Verilog and
// .bench files, so the netlists can be inspected or fed to other tools.
//
//   ./benchmark_writer [output_dir] [benchmark ...]
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "itc/family.h"
#include "netlist/stats.h"
#include "parser/bench_parser.h"
#include "parser/verilog_writer.h"

using namespace netrev;

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : "itc99s";
  std::vector<std::string> names;
  if (argc > 2) {
    for (int i = 2; i < argc; ++i) names.emplace_back(argv[i]);
  } else {
    // Everything except the two largest (which are slow to write and large
    // on disk) by default.
    for (const auto& profile : itc::itc99s_profiles())
      if (profile.name != "b17s" && profile.name != "b18s")
        names.push_back(profile.name);
  }

  std::filesystem::create_directories(out_dir);
  for (const std::string& name : names) {
    const itc::GeneratedBenchmark bench = itc::build_benchmark(name);
    const std::string v_path = out_dir + "/" + name + ".v";
    const std::string b_path = out_dir + "/" + name + ".bench";
    parser::write_verilog_file(bench.netlist, v_path);
    parser::write_bench_file(bench.netlist, b_path);
    const auto stats = netlist::compute_stats(bench.netlist);
    std::printf("%s: %s\n  -> %s, %s\n", name.c_str(),
                stats.to_string().c_str(), v_path.c_str(), b_path.c_str());
  }
  return 0;
}
