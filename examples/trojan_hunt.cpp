// Trojan-hunt scenario: the motivation of the paper's introduction.
//
// A third-party netlist arrives flattened.  We (1) recover words, (2) use the
// recovered words to partition the netlist into word-cone logic vs residue,
// and (3) flag residual logic that reads many word bits but belongs to no
// recovered word cone — the classic footprint of a trigger-style Hardware
// Trojan.  The example plants a small trigger (a wide AND over word bits
// gating a payload XOR on one output) into a family benchmark and shows the
// ranking pulls it out.
#include <algorithm>
#include <cstdio>
#include <unordered_set>
#include <vector>

#include "netlist/cone.h"
#include "pipeline/session.h"
#include "rtl/lower_ops.h"
#include "wordrec/identify.h"

using namespace netrev;

namespace {

struct PlantedTrojan {
  netlist::Netlist netlist;
  std::vector<std::string> trojan_nets;  // ground truth for the demo
};

// Rebuilds `source` with a trigger+payload appended.
PlantedTrojan plant_trojan(const netlist::Netlist& source) {
  PlantedTrojan planted;
  netlist::Netlist& nl = planted.netlist;
  nl.set_name(source.name() + "_trojaned");

  // Copy the whole design (names preserved).
  std::vector<netlist::NetId> remap(source.net_count());
  for (std::size_t i = 0; i < source.net_count(); ++i) {
    const auto& net = source.net(source.net_id_at(i));
    remap[i] = nl.add_net(net.name);
    if (net.is_primary_input) nl.mark_primary_input(remap[i]);
  }
  for (netlist::GateId g : source.gates_in_file_order()) {
    const auto& gate = source.gate(g);
    std::vector<netlist::NetId> ins;
    for (netlist::NetId in : gate.inputs) ins.push_back(remap[in.value()]);
    nl.add_gate(gate.type, remap[gate.output.value()], ins);
  }
  for (netlist::NetId po : source.primary_outputs())
    nl.mark_primary_output(remap[po.value()]);

  // Trigger: rare condition over flop outputs of two registers.
  std::vector<netlist::NetId> trigger_taps;
  for (std::size_t i = 0; i < source.net_count() && trigger_taps.size() < 6;
       ++i) {
    const netlist::NetId id = source.net_id_at(i);
    if (source.is_flop_output(id)) trigger_taps.push_back(remap[i]);
  }
  rtl::NetNamer namer(nl, 900000);
  // Rare-event trigger: one wide AND over state bits (all-ones condition).
  const netlist::NetId trigger =
      rtl::make_gate(namer, netlist::GateType::kAnd, trigger_taps);

  // Payload: corrupt the first primary output when triggered.
  const netlist::NetId victim = nl.primary_outputs().front();
  const netlist::NetId payload = rtl::make_xor(namer, victim, trigger);
  const netlist::NetId evil_out = nl.add_net("EVIL_OUT");
  nl.add_gate(netlist::GateType::kBuf, evil_out, {payload});
  nl.mark_primary_output(evil_out);
  nl.mark_primary_output(trigger);  // keep intermediate observable

  planted.trojan_nets = {nl.net(trigger).name, nl.net(payload).name,
                         "EVIL_OUT"};
  return planted;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string bench_name = argc > 1 ? argv[1] : "b08s";
  // load_netlist handles family names and netlist files alike; the planted
  // variant is adopted into the same session so identification runs through
  // the shared artifact cache.
  Session session;
  const LoadedDesign source = session.load_netlist(bench_name);
  PlantedTrojan planted = plant_trojan(source.nl());
  const LoadedDesign design =
      session.adopt_netlist(std::move(planted.netlist));
  const netlist::Netlist& nl = design.nl();

  std::printf("planted a trigger-style trojan into %s (%zu gates)\n",
              bench_name.c_str(), nl.gate_count());

  // Step 1: recover words.
  const auto identified = session.identify(design);
  const wordrec::IdentifyResult& result = *identified;
  std::printf("recovered %zu multi-bit words using %zu control signals\n",
              result.words.count_multibit(),
              result.used_control_signals.size());

  // Step 2: mark every net inside the bounded cone of any multi-bit word.
  std::unordered_set<netlist::NetId> word_logic;
  for (const wordrec::Word& word : result.words.words) {
    if (word.width() < 2) continue;
    for (netlist::NetId bit : word.bits)
      for (netlist::NetId net : netlist::fanin_cone_nets(nl, bit, 4))
        word_logic.insert(net);
  }

  // Step 3: rank residual gates by how many word-classified nets they read.
  struct Suspect {
    netlist::NetId output;
    std::size_t word_fanin = 0;
  };
  std::vector<Suspect> suspects;
  for (std::size_t i = 0; i < nl.gate_count(); ++i) {
    const auto& gate = nl.gate(nl.gate_id_at(i));
    if (gate.type == netlist::GateType::kDff) continue;
    if (word_logic.contains(gate.output)) continue;
    std::size_t hits = 0;
    for (netlist::NetId in : gate.inputs)
      if (nl.is_flop_output(in) || word_logic.contains(in)) ++hits;
    if (hits >= 2) suspects.push_back({gate.output, hits});
  }
  std::sort(suspects.begin(), suspects.end(),
            [](const Suspect& a, const Suspect& b) {
              return a.word_fanin > b.word_fanin;
            });

  std::printf("\ntop residual suspects (gates outside every word cone that "
              "read word/state bits):\n");
  bool trigger_flagged = false;
  for (std::size_t i = 0; i < suspects.size() && i < 8; ++i) {
    const auto& name = nl.net(suspects[i].output).name;
    const bool is_trojan =
        std::find(planted.trojan_nets.begin(), planted.trojan_nets.end(),
                  name) != planted.trojan_nets.end() ||
        name.find("U9000") == 0;
    std::printf("  %-12s reads %zu word/state bits%s\n", name.c_str(),
                suspects[i].word_fanin, is_trojan ? "   <-- planted trojan" : "");
    trigger_flagged = trigger_flagged || is_trojan;
  }
  std::printf("\ntrojan trigger surfaced in top suspects: %s\n",
              trigger_flagged ? "YES" : "NO");
  return trigger_flagged ? 0 : 1;
}
