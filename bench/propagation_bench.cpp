// Quantitative word-propagation experiment (extension beyond the paper's
// evaluation, motivated by its integration claim: identified words seed
// "word propagation in [6]").
//
// For each family benchmark: run Ours, then propagate words to a fixpoint,
// and measure how many *reference* words the propagated candidates recover
// on top of direct identification — candidates whose bit set covers a
// reference word that direct identification had fragmented or missed.
#include <algorithm>
#include <cstdio>
#include <set>

#include "eval/metrics.h"
#include "eval/reference.h"
#include "itc/family.h"
#include "wordrec/identify.h"
#include "wordrec/propagation.h"

using namespace netrev;

namespace {

// True if `candidate` covers all of `reference` (as sets).
bool covers(const std::vector<netlist::NetId>& candidate,
            const std::vector<netlist::NetId>& reference) {
  const std::set<netlist::NetId> have(candidate.begin(), candidate.end());
  return std::all_of(reference.begin(), reference.end(),
                     [&](netlist::NetId bit) { return have.contains(bit); });
}

}  // namespace

int main() {
  std::printf("=== Word propagation on top of identification ===\n\n");
  std::printf("%-6s %8s %10s %12s %12s %10s\n", "bench", "refwords",
              "ours-full", "candidates", "extra-found", "ambiguous");

  std::size_t total_extra = 0;
  for (const char* name : {"b03s", "b04s", "b05s", "b07s", "b08s", "b11s",
                           "b12s", "b13s", "b14s", "b15s"}) {
    const auto bench = itc::build_benchmark(name);
    const auto reference = eval::extract_reference_words(bench.netlist);
    const auto result = wordrec::identify_words(bench.netlist);
    const auto summary =
        eval::evaluate_words(result.words, reference.words);

    const auto propagated = wordrec::propagate_words_to_fixpoint(
        bench.netlist, result.words);

    // Reference words NOT fully found directly, but covered by a candidate.
    std::size_t extra = 0;
    for (std::size_t w = 0; w < reference.words.size(); ++w) {
      if (summary.per_word[w].outcome == eval::WordOutcome::kFullyFound)
        continue;
      const auto& ref = reference.words[w];
      const bool recovered = std::any_of(
          propagated.candidates.begin(), propagated.candidates.end(),
          [&](const wordrec::PropagatedWord& c) {
            return covers(c.word.bits, ref.bits);
          });
      if (recovered) ++extra;
    }
    total_extra += extra;

    std::printf("%-6s %8zu %9zu%% %12zu %12zu %10zu\n", name,
                reference.words.size(),
                static_cast<std::size_t>(summary.full_fraction * 100.0 + 0.5),
                propagated.candidates.size(), extra,
                propagated.ambiguous_positions);
  }
  std::printf(
      "\npropagation recovered %zu additional reference word(s).  On this\n"
      "family, direct identification already finds every structurally\n"
      "recoverable register word (the remainder are heterogeneous state\n"
      "registers with no alignable structure), so propagation's measured\n"
      "value here is (a) independent corroboration of found words and (b)\n"
      "recovery of OPERAND words one cone level down — including source\n"
      "registers and internal buses the golden reference does not list\n"
      "(inspect them with `netrev propagate <bench>`).\n",
      total_extra);
  return 0;
}
