// Regenerates Table 1 of the paper: for every benchmark of the synthetic
// ITC99-style family, runs the shape-hashing baseline [6] ("Base") and the
// proposed control-signal-driven identifier ("Ours"), evaluates both against
// the golden register-name reference, and prints the table plus the
// paper-vs-measured qualitative checks recorded in EXPERIMENTS.md.
//
// Usage: table1_main [benchmark ...]   (default: all twelve)
#include <cstdio>
#include <string>
#include <vector>

#include "eval/reference.h"
#include "eval/runner.h"
#include "eval/table.h"
#include "itc/family.h"

namespace {

using netrev::eval::Table1Row;

Table1Row run_benchmark(const std::string& name) {
  const netrev::itc::GeneratedBenchmark bench =
      netrev::itc::build_benchmark(name);
  const netrev::eval::ReferenceExtraction reference =
      netrev::eval::extract_reference_words(bench.netlist);

  const netrev::eval::TechniqueRun base =
      netrev::eval::run_baseline(bench.netlist);
  const netrev::eval::TechniqueRun ours = netrev::eval::run_ours(bench.netlist);
  return make_row(name, bench.netlist, reference, base, ours);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> names;
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) names.emplace_back(argv[i]);
  } else {
    for (const auto& profile : netrev::itc::itc99s_profiles())
      names.push_back(profile.name);
  }

  std::vector<Table1Row> rows;
  rows.reserve(names.size());
  for (const std::string& name : names) {
    std::fprintf(stderr, "running %s...\n", name.c_str());
    rows.push_back(run_benchmark(name));
  }

  std::printf("Table 1: word identification, Base (shape hashing [6]) vs "
              "Ours (control-signal reduction)\n\n%s\n",
              netrev::eval::render_table1(rows).c_str());

  // Qualitative checks the paper's text claims; exit nonzero if violated so
  // CI catches regressions in the reproduction.
  int violations = 0;
  for (const Table1Row& row : rows) {
    if (row.ours.full_pct + 1e-9 < row.base.full_pct) {
      std::printf("VIOLATION: %s: Ours finds fewer full words than Base\n",
                  row.benchmark.c_str());
      ++violations;
    }
    if (row.ours.not_found_pct > row.base.not_found_pct + 1e-9) {
      std::printf("VIOLATION: %s: Ours leaves more words not-found than Base\n",
                  row.benchmark.c_str());
      ++violations;
    }
  }
  const Table1Row avg = netrev::eval::average_row(rows);
  std::printf("claims: avg full-found  Base %.2f%%  Ours %.2f%%  (paper: "
              "61.54%% vs 71.89%%)\n",
              avg.base.full_pct, avg.ours.full_pct);
  std::printf("claims: avg not-found   Base %.2f%%  Ours %.2f%%  (paper: "
              "11.25%% vs 8.67%%)\n",
              avg.base.not_found_pct, avg.ours.not_found_pct);
  std::printf("claims: avg frag        Base %.3f  Ours %.3f  (paper: 0.381 vs "
              "0.213)\n",
              avg.base.fragmentation, avg.ours.fragmentation);
  if (violations != 0) {
    std::printf("%d qualitative violation(s)\n", violations);
    return 1;
  }
  std::printf("all qualitative claims hold\n");
  return 0;
}
