// Runtime-scaling microbenchmarks backing the §2.6 complexity discussion:
//   * potential-bit grouping is linear in the netlist (one pass);
//   * signature (hash key) generation is linear with a per-cone constant;
//   * the sorted-merge bit comparison visits each key once, O(k_i + k_j);
//   * full Base and Ours runs on family benchmarks of growing size (the
//     paper's "a few minutes for >100K gates" claim, Table 1 Time column).
#include <benchmark/benchmark.h>

#include <memory>

#include "common/thread_pool.h"
#include "eval/runner.h"
#include "netlist/compact.h"
#include "sim/simulator.h"
#include "itc/family.h"
#include "wordrec/baseline.h"
#include "wordrec/grouping.h"
#include "wordrec/hash_key.h"
#include "wordrec/identify.h"
#include "wordrec/matching.h"

namespace {

using namespace netrev;

// Benchmarks index the family by size: b03s (~150 cells) .. b18s (~115K).
const std::vector<std::string>& family_names() {
  static const std::vector<std::string> names = {"b03s", "b08s", "b13s",
                                                 "b07s", "b04s", "b11s",
                                                 "b05s", "b12s", "b15s",
                                                 "b14s", "b17s"};
  return names;
}

const itc::GeneratedBenchmark& benchmark_at(std::size_t index) {
  static std::vector<itc::GeneratedBenchmark> cache = [] {
    std::vector<itc::GeneratedBenchmark> all;
    for (const std::string& name : family_names())
      all.push_back(itc::build_benchmark(name));
    return all;
  }();
  return cache[index % cache.size()];
}

// The giant scaling family (b19s ~262K gates .. b21s ~2M), built lazily and
// one at a time — materializing all three up front would hold several
// million pointer-heavy gates in memory for benchmarks that touch one.
const itc::GeneratedBenchmark& giant_at(std::size_t index) {
  static const std::vector<std::string> names = {"b19s", "b20s", "b21s"};
  static std::vector<std::unique_ptr<itc::GeneratedBenchmark>> cache(
      names.size());
  const std::size_t i = index % names.size();
  if (!cache[i])
    cache[i] = std::make_unique<itc::GeneratedBenchmark>(
        itc::build_benchmark(names[i]));
  return *cache[i];
}

// All reference-word bit nets of a benchmark, the probe set funcheck reads.
std::vector<netlist::NetId> all_word_probes(
    const itc::GeneratedBenchmark& bench) {
  std::vector<netlist::NetId> probes;
  for (const auto& [root, bits] : bench.word_bits)
    probes.insert(probes.end(), bits.begin(), bits.end());
  return probes;
}

void BM_Grouping(benchmark::State& state) {
  const auto& bench = benchmark_at(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto groups = wordrec::potential_bit_groups(bench.netlist);
    benchmark::DoNotOptimize(groups);
  }
  state.counters["gates"] =
      static_cast<double>(bench.netlist.gate_count());
}
BENCHMARK(BM_Grouping)->DenseRange(0, 10, 2);

void BM_Signatures(benchmark::State& state) {
  const auto& bench = benchmark_at(static_cast<std::size_t>(state.range(0)));
  const wordrec::Options options;
  const wordrec::ConeHasher hasher(bench.netlist, options);
  for (auto _ : state) {
    std::size_t total_subtrees = 0;
    for (std::size_t i = 0; i < bench.netlist.gate_count(); ++i) {
      const auto sig = hasher.signature(
          bench.netlist.gate(bench.netlist.gate_id_at(i)).output);
      total_subtrees += sig.subtrees.size();
    }
    benchmark::DoNotOptimize(total_subtrees);
  }
  state.counters["gates"] =
      static_cast<double>(bench.netlist.gate_count());
}
BENCHMARK(BM_Signatures)->DenseRange(0, 10, 2);

void BM_CompareBits(benchmark::State& state) {
  // The sorted-merge comparison on two wide-signature bits.
  const auto& bench = benchmark_at(9);  // b14s: 30-bit words
  const wordrec::Options options;
  const wordrec::ConeHasher hasher(bench.netlist, options);
  const auto& bits = bench.word_bits.begin()->second;
  const auto sig_a = hasher.signature(bits[0]);
  const auto sig_b = hasher.signature(bits[1]);
  for (auto _ : state) {
    auto match = wordrec::compare_bits(sig_a, sig_b);
    benchmark::DoNotOptimize(match);
  }
}
BENCHMARK(BM_CompareBits);

void BM_Baseline(benchmark::State& state) {
  const auto& bench = benchmark_at(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto words = wordrec::identify_words_baseline(bench.netlist);
    benchmark::DoNotOptimize(words);
  }
  state.counters["gates"] =
      static_cast<double>(bench.netlist.gate_count());
}
BENCHMARK(BM_Baseline)->DenseRange(0, 10, 5)->Unit(benchmark::kMillisecond);

void BM_Ours(benchmark::State& state) {
  const auto& bench = benchmark_at(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto result = wordrec::identify_words(bench.netlist);
    benchmark::DoNotOptimize(result);
  }
  state.counters["gates"] =
      static_cast<double>(bench.netlist.gate_count());
}
BENCHMARK(BM_Ours)->DenseRange(0, 10, 5)->Unit(benchmark::kMillisecond);

// The --jobs scaling sweep backing BENCH_parallel.json: the full pipeline on
// the largest family benchmark (b17s) at 1/2/4/8 jobs.  Speedup is bounded
// by the host's core count — on a single-core container all rows measure the
// same work plus pool overhead.
void BM_OursJobs(benchmark::State& state) {
  const auto& bench = benchmark_at(10);  // b17s, the largest
  const std::size_t restore = ThreadPool::global_jobs();
  ThreadPool::set_global_jobs(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto result = wordrec::identify_words(bench.netlist);
    benchmark::DoNotOptimize(result);
  }
  ThreadPool::set_global_jobs(restore);
  state.counters["jobs"] = static_cast<double>(state.range(0));
  state.counters["gates"] =
      static_cast<double>(bench.netlist.gate_count());
}
BENCHMARK(BM_OursJobs)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Random-simulation sampling at 1/2/4/8 jobs (the funcheck hot loop): block
// sampling is embarrassingly parallel, so this isolates pool overhead from
// pipeline structure.
void BM_SampleVectorsJobs(benchmark::State& state) {
  const auto& bench = benchmark_at(7);  // b12s: widest funcheck load
  std::vector<netlist::NetId> probes;
  for (const auto& [root, bits] : bench.word_bits)
    probes.insert(probes.end(), bits.begin(), bits.end());
  const std::size_t restore = ThreadPool::global_jobs();
  ThreadPool::set_global_jobs(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto samples = sim::sample_random_vectors(bench.netlist, probes,
                                              /*vector_count=*/512, 0x5EED);
    benchmark::DoNotOptimize(samples);
  }
  ThreadPool::set_global_jobs(restore);
  state.counters["jobs"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_SampleVectorsJobs)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// --- data-oriented core (BENCH_core.json) ---------------------------------
//
// The before/after pair for 64-way bit-parallel random simulation: the
// scalar oracle evaluates one vector per pass over the levelized order; the
// packed engine evaluates 64 vectors per pass, one uint64_t lane word per
// net.  Both produce byte-identical samples (tests/sim/test_packed.cpp), so
// the ratio is pure throughput.
void BM_SampleScalar(benchmark::State& state) {
  const auto& bench = benchmark_at(static_cast<std::size_t>(state.range(0)));
  const auto probes = all_word_probes(bench);
  for (auto _ : state) {
    auto samples = sim::sample_random_vectors_scalar(bench.netlist, probes,
                                                     /*vector_count=*/512,
                                                     0x5EED);
    benchmark::DoNotOptimize(samples);
  }
  state.counters["gates"] =
      static_cast<double>(bench.netlist.gate_count());
  state.counters["vectors_per_s"] = benchmark::Counter(
      512, benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_SampleScalar)->DenseRange(0, 10, 2)->Unit(benchmark::kMillisecond);

void BM_SamplePacked(benchmark::State& state) {
  const auto& bench = benchmark_at(static_cast<std::size_t>(state.range(0)));
  const auto probes = all_word_probes(bench);
  const auto view = netlist::CompactView::build(bench.netlist);
  for (auto _ : state) {
    auto samples = sim::sample_random_vectors(view, probes,
                                              /*vector_count=*/512, 0x5EED);
    benchmark::DoNotOptimize(samples);
  }
  state.counters["gates"] =
      static_cast<double>(bench.netlist.gate_count());
  state.counters["vectors_per_s"] = benchmark::Counter(
      512, benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_SamplePacked)->DenseRange(0, 10, 2)->Unit(benchmark::kMillisecond);

// CompactView construction cost across the full size sweep, giants included:
// the one-time price of entering the data-oriented core (the Session caches
// it per design identity, so a process pays it once per design).
void BM_CompactBuild(benchmark::State& state) {
  const auto& bench = giant_at(static_cast<std::size_t>(state.range(0)));
  std::size_t bytes = 0;
  for (auto _ : state) {
    auto view = netlist::CompactView::build(bench.netlist);
    bytes = view.memory_bytes();
    benchmark::DoNotOptimize(view);
  }
  state.counters["gates"] =
      static_cast<double>(bench.netlist.gate_count());
  state.counters["view_bytes"] = static_cast<double>(bytes);
  state.counters["bytes_per_gate"] =
      static_cast<double>(bytes) / bench.netlist.gate_count();
}
BENCHMARK(BM_CompactBuild)->DenseRange(0, 2)->Unit(benchmark::kMillisecond);

// The million-gate identify sweep (compact core vs the legacy pointer core)
// on the giant family.  Run with --benchmark_filter=Giant; b21s holds ~2M
// gates, so expect minutes per row on a laptop-class host.
void BM_GiantIdentify(benchmark::State& state) {
  const auto& bench = giant_at(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto result = wordrec::identify_words(bench.netlist);
    benchmark::DoNotOptimize(result);
  }
  state.counters["gates"] =
      static_cast<double>(bench.netlist.gate_count());
}
BENCHMARK(BM_GiantIdentify)
    ->DenseRange(0, 2)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_GiantIdentifyLegacy(benchmark::State& state) {
  const auto& bench = giant_at(static_cast<std::size_t>(state.range(0)));
  wordrec::Options options;
  options.use_compact = false;
  for (auto _ : state) {
    auto result = wordrec::identify_words(bench.netlist, options);
    benchmark::DoNotOptimize(result);
  }
  state.counters["gates"] =
      static_cast<double>(bench.netlist.gate_count());
}
BENCHMARK(BM_GiantIdentifyLegacy)
    ->DenseRange(0, 2)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// Jobs sweep on a giant design: the BENCH_core.json counterpart of
// BM_OursJobs, exercising the compact core's parallel axes (per-group
// processing, packed sampling blocks) at million-gate scale.
void BM_GiantIdentifyJobs(benchmark::State& state) {
  const auto& bench = giant_at(0);  // b19s: the smallest giant
  const std::size_t restore = ThreadPool::global_jobs();
  ThreadPool::set_global_jobs(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto result = wordrec::identify_words(bench.netlist);
    benchmark::DoNotOptimize(result);
  }
  ThreadPool::set_global_jobs(restore);
  state.counters["jobs"] = static_cast<double>(state.range(0));
  state.counters["gates"] =
      static_cast<double>(bench.netlist.gate_count());
}
BENCHMARK(BM_GiantIdentifyJobs)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
