// Figure 1 case study: reconstructs the paper's b03 fragment (the 3-bit word
// U215/U216/U217) and walks through §2.1-§2.5 on it:
//   * the shape-hashing baseline cannot group the word (cones only partially
//     similar);
//   * the §2.4 analysis finds exactly the control signals U201 and U221
//     (U223 dropped as dominated);
//   * assigning U221 = 0 removes the dissimilar subtrees of U215 and U216
//     only; assigning U201 = 0 removes all three and the word is identified.
#include <algorithm>
#include <cstdio>
#include <utility>
#include <vector>

#include "itc/fig1.h"
#include "wordrec/assignment.h"
#include "wordrec/baseline.h"
#include "wordrec/control.h"
#include "wordrec/grouping.h"
#include "wordrec/hash_key.h"
#include "wordrec/identify.h"
#include "wordrec/matching.h"

using namespace netrev;

namespace {

// True if all three word bits have equal signatures under `map`.
bool bits_fully_similar(const wordrec::ConeHasher& hasher,
                        const std::vector<netlist::NetId>& bits,
                        const wordrec::AssignmentMap* map) {
  const wordrec::BitSignature first = hasher.signature(bits[0], map);
  if (!first.root_type.has_value()) return false;
  for (std::size_t i = 1; i < bits.size(); ++i)
    if (!first.structurally_equal(hasher.signature(bits[i], map)))
      return false;
  return true;
}

// Count of dissimilar subtrees still present across the word bits.
std::size_t dissimilar_count(const wordrec::ConeHasher& hasher,
                             const std::vector<netlist::NetId>& bits,
                             const wordrec::AssignmentMap* map) {
  std::size_t total = 0;
  for (std::size_t i = 0; i + 1 < bits.size(); ++i) {
    const auto match = wordrec::compare_bits(hasher.signature(bits[i], map),
                                             hasher.signature(bits[i + 1], map));
    total += match.dissimilar_a.size() + match.dissimilar_b.size();
  }
  return total;
}

}  // namespace

int main() {
  const itc::Fig1Circuit fig = itc::build_fig1_circuit();
  const netlist::Netlist& nl = fig.netlist;
  const auto name = [&](netlist::NetId id) { return nl.net(id).name.c_str(); };

  std::printf("=== Figure 1 case study (b03 fragment) ===\n");
  std::printf("word bits: %s %s %s\n", name(fig.word_bits[0]),
              name(fig.word_bits[1]), name(fig.word_bits[2]));

  // --- Base (shape hashing) ------------------------------------------------
  const wordrec::Options options;
  const wordrec::WordSet base = wordrec::identify_words_baseline(nl, options);
  bool base_found = false;
  for (const wordrec::Word& word : base.words) {
    if (word.bits.size() < 3) continue;
    bool all = true;
    for (netlist::NetId bit : fig.word_bits) {
      if (std::find(word.bits.begin(), word.bits.end(), bit) ==
          word.bits.end())
        all = false;
    }
    base_found = base_found || all;
  }
  std::printf("\n[Base] shape hashing groups the word: %s (paper: no)\n",
              base_found ? "YES" : "NO");

  // --- §2.3 partial matching -----------------------------------------------
  const wordrec::ConeHasher hasher(nl, options);
  std::printf("[Ours] dissimilar subtrees across adjacent bits: %zu\n",
              dissimilar_count(hasher, fig.word_bits, nullptr));

  // --- §2.4 control-signal discovery ----------------------------------------
  std::vector<netlist::NetId> dissimilar_roots;
  for (std::size_t i = 0; i + 1 < fig.word_bits.size(); ++i) {
    const auto match =
        wordrec::compare_bits(hasher.signature(fig.word_bits[i]),
                              hasher.signature(fig.word_bits[i + 1]));
    for (netlist::NetId r : match.dissimilar_a)
      if (std::find(dissimilar_roots.begin(), dissimilar_roots.end(), r) ==
          dissimilar_roots.end())
        dissimilar_roots.push_back(r);
    for (netlist::NetId r : match.dissimilar_b)
      if (std::find(dissimilar_roots.begin(), dissimilar_roots.end(), r) ==
          dissimilar_roots.end())
        dissimilar_roots.push_back(r);
  }
  const auto signals =
      wordrec::find_relevant_control_signals(nl, dissimilar_roots, options);
  std::printf("[Ours] relevant control signals:");
  for (netlist::NetId s : signals) std::printf(" %s", name(s));
  std::printf("  (paper: U201 U221; U223 dominated)\n");

  // --- §2.5 assignments ------------------------------------------------------
  const auto try_assignment = [&](netlist::NetId signal, bool value) {
    const std::pair<netlist::NetId, bool> seeds[] = {{signal, value}};
    const wordrec::PropagationResult prop = wordrec::propagate(nl, seeds);
    const bool unified =
        prop.feasible && bits_fully_similar(hasher, fig.word_bits, &prop.map);
    std::printf("[Ours] assign %s = %d: feasible=%s, dissimilar left=%zu, "
                "word unified=%s\n",
                name(signal), value ? 1 : 0, prop.feasible ? "yes" : "no",
                dissimilar_count(hasher, fig.word_bits, &prop.map),
                unified ? "YES" : "no");
    return unified;
  };
  const bool u221_unifies = try_assignment(fig.u221, false);
  const bool u201_unifies = try_assignment(fig.u201, false);

  // --- full pipeline ---------------------------------------------------------
  const wordrec::IdentifyResult ours = wordrec::identify_words(nl, options);
  bool ours_found = false;
  for (const wordrec::UnifiedWord& unified : ours.unified) {
    bool all = true;
    for (netlist::NetId bit : fig.word_bits)
      if (std::find(unified.bits.begin(), unified.bits.end(), bit) ==
          unified.bits.end())
        all = false;
    if (!all) continue;
    ours_found = true;
    std::printf("\n[Ours] full pipeline identified the 3-bit word via:");
    for (const auto& [signal, value] : unified.assignment)
      std::printf(" %s=%d", name(signal), value ? 1 : 0);
    std::printf("\n");
  }

  const bool ok = !base_found && !u221_unifies && u201_unifies && ours_found &&
                  signals.size() == 2;
  std::printf("\ncase study reproduces the paper's walk-through: %s\n",
              ok ? "YES" : "NO");
  return ok ? 0 : 1;
}
