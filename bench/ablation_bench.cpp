// Ablation harness for the design choices DESIGN.md §6 calls out:
//
//   A. family metrics under each configuration (cone depth, simultaneous
//      assignments, leaf tagging) — the aggregate view;
//   B. cone-depth sensitivity on a bespoke circuit whose word bits diverge
//      only at logic level 4 (the paper fixes depth 4; [6] reports 2-4):
//      shallow cones match permissively, deep cones split the word until a
//      control signal rescues it;
//   C. simultaneous-assignment sensitivity on a pair-controlled word (the
//      paper stops at two; more is its stated future work).
#include <cstdio>
#include <vector>

#include "eval/metrics.h"
#include "eval/reference.h"
#include "itc/family.h"
#include "itc/wordgen.h"
#include "rtl/lower_ops.h"
#include "rtl/scan.h"
#include "wordrec/baseline.h"
#include "wordrec/identify.h"

using namespace netrev;

namespace {

struct Aggregate {
  double full_pct = 0.0;
  double nf_pct = 0.0;
  double frag = 0.0;
};

Aggregate run_config(const wordrec::Options& options,
                     const std::vector<itc::GeneratedBenchmark>& benches) {
  Aggregate agg;
  for (const auto& bench : benches) {
    const auto reference = eval::extract_reference_words(bench.netlist);
    const auto result = wordrec::identify_words(bench.netlist, options);
    const auto summary = eval::evaluate_words(result.words, reference.words);
    agg.full_pct += summary.full_fraction * 100.0;
    agg.nf_pct += summary.not_found_fraction * 100.0;
    agg.frag += summary.avg_fragmentation;
  }
  const double n = static_cast<double>(benches.size());
  agg.full_pct /= n;
  agg.nf_pct /= n;
  agg.frag /= n;
  return agg;
}

void print_row(const char* label, const Aggregate& agg) {
  std::printf("%-44s full=%6.2f%%  not-found=%6.2f%%  frag=%.3f\n", label,
              agg.full_pct, agg.nf_pct, agg.frag);
}

// --- Part B circuit ---------------------------------------------------------
// A 4-bit word whose bits share levels 1-3 exactly and diverge at level 4:
//   bit_i = NAND(shared_i, deep_i);  deep_i = NOT(NOT(g_i));
//   g_i alternates AND / OR over primary inputs.
struct DepthCircuit {
  netlist::Netlist nl{"depth_abl"};
  std::vector<netlist::NetId> bits;

  DepthCircuit() {
    rtl::NetNamer namer(nl, 100);
    std::vector<netlist::NetId> pis;
    for (int i = 0; i < 8; ++i) {
      pis.push_back(nl.add_net("IN" + std::to_string(i)));
      nl.mark_primary_input(pis.back());
    }
    std::vector<rtl::GateSpec> roots;
    std::vector<netlist::NetId> shared(4), deep(4);
    for (int i = 0; i < 4; ++i) {
      const auto z1 = pis[static_cast<std::size_t>(i)];
      const auto z2 = pis[static_cast<std::size_t>(i) + 4];
      shared[static_cast<std::size_t>(i)] = rtl::make_nor(namer, z1, z2);
      const netlist::NetId g = (i % 2 == 0) ? rtl::make_and(namer, z1, z2)
                                            : rtl::make_or(namer, z1, z2);
      deep[static_cast<std::size_t>(i)] =
          rtl::make_not(namer, rtl::make_not(namer, g));
    }
    for (int i = 0; i < 4; ++i)
      roots.push_back(rtl::GateSpec{
          netlist::GateType::kNand,
          {shared[static_cast<std::size_t>(i)], deep[static_cast<std::size_t>(i)]}});
    for (const auto& root : roots) bits.push_back(rtl::emit(namer, root));
    for (netlist::NetId bit : bits) nl.mark_primary_output(bit);
  }

  // True if one generated word covers all four bits.
  bool covered(const wordrec::WordSet& words) const {
    const auto index = words.index_of_net();
    const auto first = index.at(bits[0]);
    for (netlist::NetId bit : bits)
      if (index.at(bit) != first) return false;
    return true;
  }
};

// --- Part C circuit: a pair-controlled word built by the word forge. ------
struct PairCircuit {
  netlist::Netlist nl{"pair_abl"};
  std::vector<netlist::NetId> bits;

  PairCircuit() {
    rtl::NetNamer namer(nl, 100);
    Rng rng(5);
    std::vector<netlist::NetId> pis, flops;
    for (int i = 0; i < 10; ++i) {
      pis.push_back(nl.add_net("IN" + std::to_string(i)));
      nl.mark_primary_input(pis.back());
    }
    for (int i = 0; i < 10; ++i) {
      const auto q = nl.add_net("SRC_reg_" + std::to_string(i) + "_");
      nl.add_gate(netlist::GateType::kDff, q,
                  {pis[static_cast<std::size_t>(i)]});
      flops.push_back(q);
    }
    itc::WordForge forge(namer, rng);
    forge.set_pools(flops, pis);
    itc::WordPlan plan;
    plan.kind = itc::WordKind::kControlPair;
    plan.name = "PAIR";
    plan.width = 4;
    bits = forge.emit_word(plan, 0).d_nets;
    for (std::size_t n = 0; n < nl.net_count(); ++n) {
      const auto id = nl.net_id_at(n);
      if (nl.net(id).fanouts.empty()) nl.mark_primary_output(id);
    }
  }

  bool covered(const wordrec::WordSet& words) const {
    const auto index = words.index_of_net();
    const auto first = index.at(bits[0]);
    for (netlist::NetId bit : bits)
      if (index.at(bit) != first) return false;
    return true;
  }
};

}  // namespace

int main() {
  std::vector<itc::GeneratedBenchmark> benches;
  for (const char* name :
       {"b03s", "b04s", "b05s", "b07s", "b08s", "b11s", "b12s", "b13s"})
    benches.push_back(itc::build_benchmark(name));

  std::printf("=== A. Family metrics per configuration (avg b03s..b13s) ===\n\n");
  wordrec::Options base;
  print_row("default (depth=4, pairs, leaf kinds, bwd)",
            run_config(base, benches));
  for (std::size_t depth : {2u, 3u, 5u}) {
    wordrec::Options o = base;
    o.cone_depth = depth;
    char label[64];
    std::snprintf(label, sizeof label, "cone depth = %zu", depth);
    print_row(label, run_config(o, benches));
  }
  for (std::size_t k : {1u, 3u}) {
    wordrec::Options o = base;
    o.max_simultaneous_assignments = k;
    char label[64];
    std::snprintf(label, sizeof label, "max simultaneous assignments = %zu", k);
    print_row(label, run_config(o, benches));
  }
  {
    wordrec::Options o = base;
    o.distinguish_leaf_kinds = false;
    print_row("gate-types-only hash keys (paper-strict)",
              run_config(o, benches));
  }

  std::printf("\n=== B. Cone-depth sensitivity (bits diverge at level 4) ===\n\n");
  DepthCircuit depth_circuit;
  for (std::size_t depth : {2u, 3u, 4u, 5u}) {
    wordrec::Options o;
    o.cone_depth = depth;
    const bool base_covers = depth_circuit.covered(
        wordrec::identify_words_baseline(depth_circuit.nl, o));
    const bool ours_covers = depth_circuit.covered(
        wordrec::identify_words(depth_circuit.nl, o).words);
    std::printf("depth %zu: Base groups the word: %-3s  Ours: %-3s\n", depth,
                base_covers ? "yes" : "no", ours_covers ? "yes" : "no");
  }
  std::printf("(shallow cones cannot see the divergence; at depth >= 4 only\n"
              " the control-signal reduction path can recover words whose\n"
              " deep garnish shares a control signal — here it does not, so\n"
              " the word stays split: the paper's motivation for depth 4.)\n");

  std::printf("\n=== C. Simultaneous-assignment budget (pair-controlled word) ===\n\n");
  PairCircuit pair_circuit;
  for (std::size_t budget : {1u, 2u, 3u}) {
    wordrec::Options o;
    o.max_simultaneous_assignments = budget;
    const auto result = wordrec::identify_words(pair_circuit.nl, o);
    std::printf("max assignments %zu: word recovered: %-3s  (signals used: %zu, "
                "trials: %zu)\n",
                budget, pair_circuit.covered(result.words) ? "yes" : "no",
                result.used_control_signals.size(),
                result.stats.reduction_trials);
  }
  std::printf("(the paper's b18 observation: some words need two signals;\n"
              " budgets beyond the needed arity only add trials.)\n");

  std::printf("\n=== D. Cross-group checking (§2.2 future work) ===\n\n");
  {
    // A clean 4-bit word whose root run is split by one stray line.
    netlist::Netlist nl("xgroup_abl");
    rtl::NetNamer namer(nl, 100);
    std::vector<netlist::NetId> pis;
    for (int i = 0; i < 8; ++i) {
      pis.push_back(nl.add_net("IN" + std::to_string(i)));
      nl.mark_primary_input(pis.back());
    }
    std::vector<std::pair<netlist::NetId, netlist::NetId>> subtrees;
    for (int i = 0; i < 4; ++i)
      subtrees.emplace_back(
          rtl::make_nand(namer, pis[static_cast<std::size_t>(i)],
                         pis[static_cast<std::size_t>(i) + 4]),
          rtl::make_nor(namer, pis[static_cast<std::size_t>(i)],
                        pis[static_cast<std::size_t>((i + 2) % 8)]));
    std::vector<netlist::NetId> bits;
    for (int i = 0; i < 4; ++i) {
      if (i == 2)  // the stray line splitting the run
        nl.mark_primary_output(rtl::make_xor(namer, pis[0], pis[1]));
      const auto& [s0, s1] = subtrees[static_cast<std::size_t>(i)];
      bits.push_back(rtl::emit(namer, rtl::GateSpec{netlist::GateType::kNand,
                                                    {s0, s1}}));
    }
    for (netlist::NetId bit : bits) nl.mark_primary_output(bit);

    const auto covered = [&](const wordrec::WordSet& words) {
      const auto index = words.index_of_net();
      for (netlist::NetId bit : bits)
        if (index.at(bit) != index.at(bits[0])) return false;
      return true;
    };
    for (bool cross : {false, true}) {
      wordrec::Options o;
      o.cross_group_checking = cross;
      std::printf("cross-group %-3s: split word recovered whole: %s\n",
                  cross ? "on" : "off",
                  covered(wordrec::identify_words(nl, o).words) ? "yes" : "no");
    }
  }

  std::printf("\n=== E. DFT scan insertion (CAD-inserted control logic) ===\n\n");
  {
    const auto bench = itc::build_benchmark("b08s");
    const auto scanned = rtl::insert_scan_chain(bench.netlist);
    const auto reference = eval::extract_reference_words(bench.netlist);
    const auto reference_scan =
        eval::extract_reference_words(scanned.netlist);
    for (const auto& [label, nl, ref] :
         {std::tuple<const char*, const netlist::Netlist*,
                     const eval::ReferenceExtraction*>{
              "pre-scan ", &bench.netlist, &reference},
          {"post-scan", &scanned.netlist, &reference_scan}}) {
      const auto result = wordrec::identify_words(*nl);
      const auto summary = eval::evaluate_words(result.words, ref->words);
      std::printf("%s b08s: full=%5.1f%%  not-found=%5.1f%%  signals=%zu\n",
                  label, summary.full_fraction * 100.0,
                  summary.not_found_fraction * 100.0,
                  result.used_control_signals.size());
    }
    std::printf("(scan muxes rewire every flop's D through a uniform test\n"
                " wrapper: the reference bits move to the mux outputs and the\n"
                " functional cones sink two levels deeper, past the depth-4\n"
                " horizon — identification quality drops sharply.  This is\n"
                " the realistic hard case behind the paper's premise about\n"
                " CAD-inserted control signals; the original functional words\n"
                " are still recovered one mux-level down, which is exactly\n"
                " what word propagation exploits.)\n");
  }
  return 0;
}
